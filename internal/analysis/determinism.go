package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces that simulation code (non-test packages under
// internal/) is bit-for-bit reproducible:
//
//   - no wall-clock reads (time.Now/Since/Until), no global math/rand
//     state, no environment reads (os.Getenv & friends) — except in an
//     allowlisted shim marked with //wplint:allow determinism;
//   - no `range` over a map whose body has effects that depend on the
//     iteration order. Order-independent idioms stay legal: writes
//     indexed by the range key, commutative integer aggregation into
//     locals, collecting keys into a slice that is subsequently
//     sorted, and constant flag assignments.
//
// Map iteration order is randomized per process in Go, so any
// order-dependent effect inside such a loop leaks nondeterminism into
// statistics, traces or replay — exactly what decoupled simulation's
// bit-identical parallel/sequential guarantee forbids.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-time, global randomness, env reads and map-iteration-order effects in simulation code",
	Run:  runDeterminism,
}

// bannedCalls maps package path → function names whose results differ
// between runs. A nil set bans every package-level function (math/rand
// global state), except explicit constructors that take a caller seed.
var bannedCalls = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// randConstructors are the math/rand names that are deterministic when
// the caller supplies the seed/source, so they stay allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return // CLIs and examples may read the clock and environment
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkBannedSelector(pass, n)
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						checkMapRange(pass, f, n)
					}
				}
			}
			return true
		})
	}
}

// checkBannedSelector flags uses of nondeterministic package-level
// functions.
func checkBannedSelector(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pkgName.Imported().Path()
	names, banned := bannedCalls[path]
	if !banned {
		return
	}
	if names == nil { // math/rand: global state
		if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc || randConstructors[sel.Sel.Name] {
			return
		}
	} else if !names[sel.Sel.Name] {
		return
	}
	pass.Reportf(sel.Pos(), "nondeterministic call %s.%s in simulation code; inject it (e.g. a Clock) or mark an approved shim with //wplint:allow", path, sel.Sel.Name)
}

// mapRange carries the per-loop state of the order-dependence check.
type mapRange struct {
	pass *Pass
	file *ast.File
	rs   *ast.RangeStmt
	key  types.Object // range key variable (nil for `for range m`)
	val  types.Object // range value variable
}

func checkMapRange(pass *Pass, f *ast.File, rs *ast.RangeStmt) {
	mr := &mapRange{pass: pass, file: f, rs: rs}
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		mr.key = pass.Pkg.Info.ObjectOf(id)
	}
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		mr.val = pass.Pkg.Info.ObjectOf(id)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			mr.checkCall(n)
		case *ast.AssignStmt:
			mr.checkAssign(n)
		case *ast.IncDecStmt:
			mr.checkWrite(n.X, n.Pos(), token.INC)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: delivery order depends on map order")
		case *ast.ReturnStmt:
			mr.checkReturn(n)
		}
		return true
	})
}

// local reports whether the object is declared within the range
// statement (loop-local temporaries cannot leak iteration order).
func (mr *mapRange) local(obj types.Object) bool {
	return obj != nil && mr.rs.Pos() <= obj.Pos() && obj.Pos() <= mr.rs.End()
}

func (mr *mapRange) checkCall(call *ast.CallExpr) {
	info := mr.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return // append/len/cap/delete/...: handled at the assignment
		}
	}
	mr.pass.Reportf(call.Pos(), "function call inside map iteration: its effects occur in map order; iterate a sorted key slice instead")
}

func (mr *mapRange) checkAssign(as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return // new loop-local variables
	}
	// Collect idiom: s = append(s, ...) into an outer slice is fine if
	// the function sorts s after the loop.
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
					if arg0, ok := call.Args[0].(*ast.Ident); ok &&
						mr.pass.Pkg.Info.ObjectOf(arg0) == mr.pass.Pkg.Info.ObjectOf(lhs) {
						obj := mr.pass.Pkg.Info.ObjectOf(lhs)
						if mr.local(obj) || mr.sortedAfterLoop(obj) {
							return
						}
						mr.pass.Reportf(as.Pos(), "appends to %s in map-iteration order and never sorts it; sort after the loop or iterate sorted keys", lhs.Name)
						return
					}
				}
			}
		}
	}
	for _, lhs := range as.Lhs {
		mr.checkWrite(lhs, as.Pos(), as.Tok)
	}
	// Plain `=` of a non-constant to an outer variable: last-writer-wins
	// in map order.
	if as.Tok == token.ASSIGN {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := mr.pass.Pkg.Info.ObjectOf(id)
			if mr.local(obj) {
				continue
			}
			if i < len(as.Rhs) {
				if tv, ok := mr.pass.Pkg.Info.Types[as.Rhs[i]]; ok && tv.Value != nil {
					continue // constant flag assignment: order-independent
				}
			}
			mr.pass.Reportf(as.Pos(), "assigns a loop-dependent value to %s: the survivor depends on map order", id.Name)
		}
	}
}

// checkWrite validates one written lvalue inside the loop body.
func (mr *mapRange) checkWrite(lhs ast.Expr, pos token.Pos, tok token.Token) {
	info := mr.pass.Pkg.Info
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" || mr.local(info.ObjectOf(lhs)) {
			return
		}
		switch tok {
		case token.INC, token.DEC, token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// Commutative accumulation is order-independent for
			// integers but not for floats (rounding) or strings.
			if t, ok := info.TypeOf(lhs).Underlying().(*types.Basic); ok &&
				t.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0 {
				mr.pass.Reportf(pos, "accumulates into %s (%s) in map order: floating-point/string accumulation is order-dependent", lhs.Name, info.TypeOf(lhs))
			}
			return
		case token.ASSIGN:
			return // handled by checkAssign's constant test
		default:
			mr.pass.Reportf(pos, "writes %s in map-iteration order", lhs.Name)
		}
	case *ast.IndexExpr:
		// X[k] = ... where k is the range key: each key is visited
		// exactly once, so the effect is order-independent.
		if id, ok := lhs.Index.(*ast.Ident); ok {
			obj := info.ObjectOf(id)
			if obj != nil && obj == mr.key {
				return
			}
			if obj != nil && obj == mr.val {
				mr.pass.Reportf(pos, "indexes the write by the range *value* %s: values can collide, making the result map-order-dependent", id.Name)
				return
			}
		}
		if base, ok := lhs.X.(*ast.Ident); ok && mr.local(info.ObjectOf(base)) {
			return
		}
		mr.pass.Reportf(pos, "writes an element of an outer container in map-iteration order")
	case *ast.SelectorExpr:
		if base, ok := lhs.X.(*ast.Ident); ok && mr.local(info.ObjectOf(base)) {
			return
		}
		mr.pass.Reportf(pos, "writes field %s in map-iteration order", lhs.Sel.Name)
	case *ast.StarExpr:
		mr.pass.Reportf(pos, "writes through a pointer in map-iteration order")
	}
}

// checkReturn flags early returns that surface a map-order-dependent
// pick (returning constants — found/ok patterns — is fine).
func (mr *mapRange) checkReturn(ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		tv, ok := mr.pass.Pkg.Info.Types[res]
		if ok && tv.Value != nil {
			continue
		}
		if ok && tv.IsNil() {
			continue
		}
		mr.pass.Reportf(ret.Pos(), "returns a value chosen by map-iteration order")
		return
	}
}

// sortedAfterLoop reports whether obj is passed to a sort/slices call
// after the range loop within the same function.
func (mr *mapRange) sortedAfterLoop(obj types.Object) bool {
	fd := enclosingFunc(mr.file, mr.rs.Pos())
	if fd == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < mr.rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := mr.pass.Pkg.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && mr.pass.Pkg.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
