package sim

import (
	"testing"
	"time"

	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

func TestFixedClockAdvances(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	c := &FixedClock{T: base, Step: 3 * time.Second}
	if got := c.Now(); !got.Equal(base) {
		t.Fatalf("first Now = %v, want %v", got, base)
	}
	if got := c.Now(); !got.Equal(base.Add(3 * time.Second)) {
		t.Fatalf("second Now = %v, want %v", got, base.Add(3*time.Second))
	}
}

// TestInjectedClockDrivesWall runs a full simulation with a FixedClock
// and checks that the reported Result.Wall comes from the injected clock
// rather than the host: Run samples the clock exactly twice (start and
// end), so Wall must equal one Step.
func TestInjectedClockDrivesWall(t *testing.T) {
	cfg := Default(wrongpath.NoWP)
	cfg.Clock = &FixedClock{T: time.Unix(0, 0), Step: 42 * time.Millisecond}
	w := gap.BFS(gap.TestParams())
	inst, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg, inst)
	if err != nil {
		t.Fatal(err)
	}
	if r.Wall != 42*time.Millisecond {
		t.Errorf("Wall = %v, want the injected clock's step (42ms)", r.Wall)
	}
}

// TestNilClockDefaultsToWall checks the zero-config path still measures
// real (non-negative) wall time through the approved shim.
func TestNilClockDefaultsToWall(t *testing.T) {
	var cfg Config
	if _, ok := cfg.clock().(wallClock); !ok {
		t.Fatalf("nil Clock resolved to %T, want wallClock", cfg.clock())
	}
}
