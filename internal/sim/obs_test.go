package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// obsConfig returns a config with a fresh registry and an in-memory
// trace sink attached, plus the buffer the trace lands in.
func obsConfig(k wrongpath.Kind, label string) (Config, *obs.Registry, *obs.TraceSink, *bytes.Buffer) {
	cfg := Default(k)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewTraceSink(&buf)
	cfg.Metrics, cfg.Trace, cfg.ObsLabel = reg, sink, label
	return cfg, reg, sink, &buf
}

// TestObsEnabledBitIdentical: attaching the full observability stack
// (metrics registry + trace sink) must not perturb a single simulated
// statistic — instrumentation observes the simulation, never steers it.
// The acceptance criterion's enabled half at the session level.
func TestObsEnabledBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
		plain, err := Run(Default(k), w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		cfg, _, sink, buf := obsConfig(k, "gap/bfs")
		observed, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("%v: trace sink: %v", k, err)
		}
		if plain.Core != observed.Core || plain.Policy != observed.Policy {
			t.Errorf("%v: observability changed simulated statistics", k)
		}
		if plain.L1I != observed.L1I || plain.L1D != observed.L1D ||
			plain.L2 != observed.L2 || plain.LLC != observed.LLC {
			t.Errorf("%v: observability changed cache statistics", k)
		}
		if plain.FunctionalInsts != observed.FunctionalInsts ||
			plain.WPEmulatedPaths != observed.WPEmulatedPaths {
			t.Errorf("%v: observability changed frontend statistics", k)
		}
		if !json.Valid(buf.Bytes()) {
			t.Errorf("%v: trace sink emitted invalid JSON", k)
		}
	}
}

// TestRunKindsObsIdentical: the sweep entry point with observability on
// must match the plain sweep field-for-field (except host wall clock).
func TestRunKindsObsIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	kinds := wrongpath.Kinds()
	plain, err := RunKinds(Default(wrongpath.NoWP), w, kinds, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg, reg, sink, buf := obsConfig(wrongpath.NoWP, "")
	observed, err := RunKinds(cfg, w, kinds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	for i, k := range kinds {
		p, o := plain[i], observed[i]
		if p.Core != o.Core || p.Policy != o.Policy {
			t.Errorf("%v: observed sweep cell differs from plain cell", k)
		}
		if p.L1I != o.L1I || p.L1D != o.L1D || p.L2 != o.L2 || p.LLC != o.LLC {
			t.Errorf("%v: cache stats differ with observability on", k)
		}
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("sweep trace is not valid JSON")
	}
	// RunKinds derives the workload label when none is set; every cell
	// publishes exactly one run under it.
	for i, k := range kinds {
		key := obs.Key("sim_runs_total", w.Suite+"/"+w.Name, k.String())
		if got := reg.Counter(key).Value(); got != 1 {
			t.Errorf("%s = %d, want 1", key, got)
		}
		key = obs.Key("sim_instructions_total", w.Suite+"/"+w.Name, k.String())
		if got := reg.Counter(key).Value(); got != observed[i].Core.Instructions {
			t.Errorf("%s = %d, want %d", key, got, observed[i].Core.Instructions)
		}
	}
}

// TestRunPublishesAggregates: a single accepted run publishes counters
// that equal the result's own statistics exactly.
func TestRunPublishesAggregates(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg, reg, sink, _ := obsConfig(wrongpath.Conv, "gap/bfs")
	res, err := Run(cfg, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want uint64
	}{
		{"sim_runs_total", 1},
		{"sim_instructions_total", res.Core.Instructions},
		{"sim_cycles_total", res.Core.Cycles},
		{"sim_mispredicts_total", res.Core.Mispredicts},
		{"wrongpath_generated_total", res.Policy.WPGenerated},
		{"conv_detected_total", res.Policy.ConvDetected},
	}
	for _, c := range checks {
		key := obs.Key(c.name, "gap/bfs", "conv")
		if got := reg.Counter(key).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", key, got, c.want)
		}
	}
}

// TestLadderMetricsNoDoubleCount is the degraded-sweep consistency
// criterion: a cell that faults on its requested rung and is rescued a
// rung down must publish aggregate counters for the accepted rung ONLY.
// The failed attempt's partial progress (it ran 100 instructions and
// generated wrong paths before the injected panic) must not leak into
// sweep totals — WPGenerated is never double-counted across retries.
func TestLadderMetricsNoDoubleCount(t *testing.T) {
	const label = "gap/bfs"
	w := gap.BFS(gap.TestParams())
	cfg, reg, sink, _ := obsConfig(wrongpath.Conv, label)
	cfg.Degrade = DegradePolicy{MaxRetries: 1}
	attempts := 0
	res, err := RunLadder(cfg, func(c Config) (Source, error) {
		attempts++
		src := NewFunctionalSource(c, w.MustBuild())
		if attempts == 1 {
			return WrapSource(src, func(p queue.Producer) queue.Producer {
				return faultinject.PanicAt(p, 100, "injected worker fault")
			}), nil
		}
		return src, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || res.WP != wrongpath.InstRec || !res.Degraded {
		t.Fatalf("ladder shape unexpected: attempts=%d WP=%v degraded=%v", attempts, res.WP, res.Degraded)
	}

	accepted := res.WP.String() // instrec — the rung that produced the result
	requested := "conv"         // the rung that faulted
	counter := func(name, tech string) uint64 {
		return reg.Counter(obs.Key(name, label, tech)).Value()
	}
	// Exactly one accepted run, counted under the accepted technique.
	if got := counter("sim_runs_total", accepted); got != 1 {
		t.Errorf("sim_runs_total{%s} = %d, want 1", accepted, got)
	}
	if got := counter("sim_runs_total", requested); got != 0 {
		t.Errorf("sim_runs_total{%s} = %d, want 0 — failed attempt must not publish", requested, got)
	}
	// Aggregates equal the accepted result exactly: the conv attempt's
	// partial run contributed nothing.
	if got := counter("wrongpath_generated_total", accepted); got != res.Policy.WPGenerated {
		t.Errorf("wrongpath_generated_total{%s} = %d, want %d (accepted result only)",
			accepted, got, res.Policy.WPGenerated)
	}
	if got := counter("wrongpath_generated_total", requested); got != 0 {
		t.Errorf("wrongpath_generated_total{%s} = %d, want 0 — retry rung double-counted", requested, got)
	}
	if got := counter("sim_instructions_total", accepted); got != res.Core.Instructions {
		t.Errorf("sim_instructions_total{%s} = %d, want %d", accepted, got, res.Core.Instructions)
	}
	if got := counter("sim_instructions_total", requested); got != 0 {
		t.Errorf("sim_instructions_total{%s} = %d, want 0", requested, got)
	}
	// The descent itself is visible: one retry and one degraded run,
	// both labeled by what was requested.
	if got := counter("sim_degrade_retries_total", requested); got != 1 {
		t.Errorf("sim_degrade_retries_total{%s} = %d, want 1", requested, got)
	}
	if got := counter("sim_degraded_runs_total", requested); got != 1 {
		t.Errorf("sim_degraded_runs_total{%s} = %d, want 1", requested, got)
	}
}
