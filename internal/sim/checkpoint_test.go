package sim

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/simerr"
	"repro/internal/tracefile"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// chaosSeed seeds the deterministic kill-point derivation; change it to
// explore different checkpoint boundaries.
const chaosSeed = 0x57505349_4D303821

// killIndexFor derives the 1-based checkpoint index at which a chaos
// cell is killed — pseudo-random across cells, bit-stable across runs
// (the determinism rule bans math/rand; this is a splitmix64 step).
func killIndexFor(seed uint64, kind, lane int) int {
	x := seed + uint64(kind)*0x9E3779B97F4A7C15 + uint64(lane)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x%3) + 1
}

// stripWall zeroes the only host-dependent Result field so the rest can
// be compared bit-for-bit.
func stripWall(r *Result) *Result {
	c := *r
	c.Wall = 0
	return &c
}

// chaosConfig is the shared cell configuration: a short bounded run
// with warmup (so resume must also reproduce the warmup-era state the
// snapshot carries in its caches and predictor).
func chaosConfig(k wrongpath.Kind, lane int) Config {
	cfg := Default(k)
	cfg.Core.Batch = lane
	cfg.WarmupInsts = 10_000
	cfg.MaxInsts = 40_000
	return cfg
}

// TestCheckpointResumeBitIdentical is the chaos acceptance harness: for
// every technique × lane size, run uninterrupted, then run again with
// checkpointing and cancel at a seeded pseudo-random checkpoint
// boundary, resume from the latest snapshot, and require the resumed
// Result to be bit-identical to the uninterrupted one.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for ki, k := range wrongpath.Kinds() {
		for _, lane := range []int{1, 64} {
			t.Run(k.String()+"/lane"+map[int]string{1: "1", 64: "64"}[lane], func(t *testing.T) {
				cfg := chaosConfig(k, lane)
				base, err := Run(cfg, w.MustBuild())
				if err != nil {
					t.Fatal(err)
				}
				if base.Err != nil {
					t.Fatalf("baseline fault: %v", base.Err)
				}

				dir := t.TempDir()
				killAt := killIndexFor(chaosSeed, ki, lane)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				ccfg := cfg
				ccfg.Ctx = ctx
				ccfg.CheckpointDir = dir
				ccfg.CheckpointEvery = 8_000
				seen := 0
				ccfg.OnCheckpoint = func(insts uint64, path string) {
					if seen++; seen == killAt {
						cancel()
					}
				}
				killed, err := Run(ccfg, w.MustBuild())
				if err != nil {
					t.Fatal(err)
				}
				if !errors.Is(killed.Err, simerr.ErrCanceled) {
					t.Fatalf("killed run Err = %v, want ErrCanceled", killed.Err)
				}
				if killed.Core.Instructions >= base.Core.Instructions {
					t.Fatalf("kill at checkpoint %d did not truncate the run (%d insts)", killAt, killed.Core.Instructions)
				}

				snap, err := checkpoint.Latest(dir)
				if err != nil || snap == "" {
					t.Fatalf("no snapshot after kill: %q, %v", snap, err)
				}
				rcfg := cfg
				rcfg.CheckpointDir = dir
				rcfg.CheckpointEvery = 8_000
				resumed, err := Resume(rcfg, w.MustBuild(), snap)
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Err != nil {
					t.Fatalf("resumed fault: %v", resumed.Err)
				}
				if !reflect.DeepEqual(stripWall(base), stripWall(resumed)) {
					t.Errorf("resumed result diverges from uninterrupted run\nbase:    %+v\nresumed: %+v", stripWall(base), stripWall(resumed))
				}
			})
		}
	}
}

// TestCheckpointingDisturbsNothing: enabling snapshots must not perturb
// the simulation — a checkpointed run's Result is bit-identical to a
// plain one.
func TestCheckpointingDisturbsNothing(t *testing.T) {
	w := gap.CC(gap.TestParams())
	cfg := chaosConfig(wrongpath.ConvResolve, 64)
	plain, err := Run(cfg, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.CheckpointDir = t.TempDir()
	ccfg.CheckpointEvery = 5_000
	snapped, err := Run(ccfg, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if snapped.Err != nil {
		t.Fatalf("checkpointed run fault: %v", snapped.Err)
	}
	if !reflect.DeepEqual(stripWall(plain), stripWall(snapped)) {
		t.Errorf("checkpointing perturbed the run\nplain:   %+v\nsnapped: %+v", stripWall(plain), stripWall(snapped))
	}
	ents, err := os.ReadDir(ccfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Error("checkpointed run wrote no snapshots")
	}
}

// TestCheckpointGridStableAcrossLanes: the snapshot instants sit on the
// instruction grid, so lane size 1 and 64 write snapshots at identical
// retired-instruction counts — the property that makes a snapshot
// resumable under a different lane size.
func TestCheckpointGridStableAcrossLanes(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	grids := map[int][]uint64{}
	for _, lane := range []int{1, 64} {
		cfg := chaosConfig(wrongpath.Conv, lane)
		cfg.CheckpointDir = t.TempDir()
		cfg.CheckpointEvery = 8_000
		cfg.OnCheckpoint = func(insts uint64, path string) {
			grids[lane] = append(grids[lane], insts)
		}
		res, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if len(grids[1]) == 0 || !reflect.DeepEqual(grids[1], grids[64]) {
		t.Errorf("snapshot grids differ across lane sizes: lane1=%v lane64=%v", grids[1], grids[64])
	}
}

// TestResumeAcrossLaneSizes: a snapshot written under lane size 64
// resumes under lane size 1 and still reproduces the lane-1 baseline
// exactly (lane batching is bit-exact, so the fingerprint excludes it).
func TestResumeAcrossLaneSizes(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	base, err := Run(chaosConfig(wrongpath.Conv, 1), w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := chaosConfig(wrongpath.Conv, 64)
	wcfg.CheckpointDir = t.TempDir()
	wcfg.CheckpointEvery = 16_000
	if res, err := Run(wcfg, w.MustBuild()); err != nil {
		t.Fatal(err)
	} else if res.Err != nil {
		t.Fatal(res.Err)
	}
	snap, err := checkpoint.Latest(wcfg.CheckpointDir)
	if err != nil || snap == "" {
		t.Fatalf("no snapshot: %q, %v", snap, err)
	}
	resumed, err := Resume(chaosConfig(wrongpath.Conv, 1), w.MustBuild(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Err != nil {
		t.Fatal(resumed.Err)
	}
	if !reflect.DeepEqual(stripWall(base), stripWall(resumed)) {
		t.Errorf("cross-lane resume diverges\nbase:    %+v\nresumed: %+v", stripWall(base), stripWall(resumed))
	}
}

// TestResumeTraceBitIdentical: the trace frontend checkpoints its
// cursor; a killed replay resumes over a fresh reader of the same bytes
// and matches the uninterrupted replay bit-for-bit.
func TestResumeTraceBitIdentical(t *testing.T) {
	raw := recordTrace(t)
	reader := func() *tracefile.Reader {
		r, err := tracefile.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cfg := Default(wrongpath.Conv)
	cfg.MaxInsts = 30_000
	base, err := RunTrace(cfg, reader())
	if err != nil {
		t.Fatal(err)
	}
	if base.Err != nil {
		t.Fatal(base.Err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ccfg := cfg
	ccfg.Ctx = ctx
	ccfg.CheckpointDir = dir
	ccfg.CheckpointEvery = 10_000
	ccfg.OnCheckpoint = func(insts uint64, path string) { cancel() }
	killed, err := RunTrace(ccfg, reader())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(killed.Err, simerr.ErrCanceled) {
		t.Fatalf("killed trace run Err = %v, want ErrCanceled", killed.Err)
	}
	snap, err := checkpoint.Latest(dir)
	if err != nil || snap == "" {
		t.Fatalf("no snapshot: %q, %v", snap, err)
	}
	resumed, err := ResumeTrace(cfg, reader(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Err != nil {
		t.Fatal(resumed.Err)
	}
	if !reflect.DeepEqual(stripWall(base), stripWall(resumed)) {
		t.Errorf("trace resume diverges\nbase:    %+v\nresumed: %+v", stripWall(base), stripWall(resumed))
	}
}

// TestResumeFingerprintMismatch: a snapshot written under one
// configuration must refuse to restore into another, as a typed
// ErrConfig fault, not silent divergence.
func TestResumeFingerprintMismatch(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg := chaosConfig(wrongpath.Conv, 64)
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 16_000
	if res, err := Run(cfg, w.MustBuild()); err != nil {
		t.Fatal(err)
	} else if res.Err != nil {
		t.Fatal(res.Err)
	}
	snap, err := checkpoint.Latest(cfg.CheckpointDir)
	if err != nil || snap == "" {
		t.Fatalf("no snapshot: %q, %v", snap, err)
	}
	bad := cfg
	bad.MaxInsts = 50_000
	if _, err := Resume(bad, w.MustBuild(), snap); !errors.Is(err, simerr.ErrConfig) {
		t.Fatalf("mismatched resume err = %v, want ErrConfig", err)
	}
}

// TestResumeCorruptSnapshot: flipping one payload byte must surface a
// typed corruption fault from the checksum gate.
func TestResumeCorruptSnapshot(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg := chaosConfig(wrongpath.NoWP, 64)
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 16_000
	if res, err := Run(cfg, w.MustBuild()); err != nil {
		t.Fatal(err)
	} else if res.Err != nil {
		t.Fatal(res.Err)
	}
	snap, err := checkpoint.Latest(cfg.CheckpointDir)
	if err != nil || snap == "" {
		t.Fatalf("no snapshot: %q, %v", snap, err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	mangled := filepath.Join(t.TempDir(), "mangled.wpsnap")
	if err := os.WriteFile(mangled, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cfg, w.MustBuild(), mangled); !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Fatalf("corrupt resume err = %v, want ErrTraceCorrupt", err)
	}
}

// TestCheckpointRejectsParallelFrontend: the mutual exclusion is a
// loud, typed configuration error.
func TestCheckpointRejectsParallelFrontend(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg := chaosConfig(wrongpath.NoWP, 64)
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 16_000
	cfg.ParallelFrontend = true
	if _, err := Run(cfg, w.MustBuild()); !errors.Is(err, simerr.ErrConfig) {
		t.Fatalf("parallel+checkpoint err = %v, want ErrConfig", err)
	}
}
