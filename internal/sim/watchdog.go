package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/simerr"
	"repro/internal/trace"
)

// Interrupter is the optional capability a producer or Source exposes
// to be unblocked from another goroutine: Interrupt must be idempotent,
// non-blocking, and cause pending and future Next calls to report
// end-of-stream. frontend.Parallel and faultinject.Freezer implement
// it; the stall watchdog uses it to abort a wedged run.
type Interrupter interface {
	Interrupt()
}

// interrupt forwards an Interrupt request to v if it supports it.
func interrupt(v any) {
	if i, ok := v.(Interrupter); ok {
		i.Interrupt()
	}
}

// progressTap wraps the queue's producer side to expose production
// progress (instruction count and last PC) to the watchdog goroutine
// through atomics. It sits between the Source and the queue, so it
// observes exactly what the queue ingests regardless of frontend kind.
//
// The tap deliberately does NOT implement queue.BatchProducer: a
// batched forward could only account records after the whole call
// returned, so a producer wedging mid-batch would leave the stall
// snapshot reporting a stale count and PC. Watchdog-armed runs
// therefore refill per record (consumer-side lane batching and
// convergence windows still apply); unwatched runs keep the fully
// batched producer path.
type progressTap struct {
	src      queue.Producer
	produced atomic.Uint64
	lastPC   atomic.Uint64
}

func (t *progressTap) Next() (trace.DynInst, bool) {
	di, ok := t.src.Next()
	if ok {
		t.produced.Add(1)
		t.lastPC.Store(di.PC)
	}
	return di, ok
}

// watchdog aborts a run that stops making progress. It samples the
// producer tap and the queue's pop counter once per budget interval; a
// full interval with neither side advancing is a stall, reported as a
// typed simerr.ErrStall fault with a diagnostic snapshot, after which
// the producer is interrupted so the simulation goroutine unwinds to a
// clean (early) end of stream.
//
// Abort requires the source chain to be interruptible (Interrupter); a
// producer blocked in uninterruptible code is still *detected* — the
// fault is recorded — but the run can only unwind once that call
// returns. A consumer-side stall that never touches the queue again is
// likewise detected but not preemptible: Go offers no safe way to stop
// the simulation goroutine from outside.
type watchdog struct {
	fault atomic.Pointer[simerr.Fault]
	done  chan struct{}
	ack   chan struct{}
}

// startWatchdog launches the sampling goroutine. stop must be called
// exactly once; it waits for the goroutine to exit so the fault value
// is settled when the session assembles its Result.
func startWatchdog(clk AfterClock, budget time.Duration, tap *progressTap, q *queue.Queue, src Source, wp string, view *obs.View) *watchdog {
	w := &watchdog{done: make(chan struct{}), ack: make(chan struct{})}
	go func() {
		defer close(w.ack)
		lastProduced := tap.produced.Load()
		lastPopped := q.Popped()
		for {
			select {
			case <-w.done:
				return
			case <-clk.After(budget):
			}
			produced, popped := tap.produced.Load(), q.Popped()
			view.WatchdogSample(produced, popped)
			if produced != lastProduced || popped != lastPopped {
				lastProduced, lastPopped = produced, popped
				continue
			}
			view.WatchdogStall(tap.lastPC.Load(), produced, popped)
			w.fault.Store(&simerr.Fault{
				Kind:      simerr.ErrStall,
				Op:        "stall watchdog",
				Technique: wp,
				PC:        tap.lastPC.Load(),
				Fetched:   produced,
				Consumed:  popped,
				Err: fmt.Errorf("neither queue side advanced within %v (occupancy %d)",
					budget, produced-popped),
			})
			interrupt(src)
			return
		}
	}()
	return w
}

// stop terminates the watchdog (if it has not already fired) and waits
// for its goroutine.
func (w *watchdog) stop() {
	close(w.done)
	<-w.ack
}

// Fault returns the recorded stall fault, or nil. Valid after stop.
func (w *watchdog) Fault() error {
	if f := w.fault.Load(); f != nil {
		return f
	}
	return nil
}

// watchdogClock selects the timer for the watchdog: the configured
// Clock when it supports After, the wall clock otherwise.
func (c Config) watchdogClock() AfterClock {
	if ac, ok := c.clock().(AfterClock); ok {
		return ac
	}
	return wallClock{}
}
