package sim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/queue"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// sessionSnapshotVersion stamps the session-level snapshot header; bump
// it when the header layout or the section order below changes.
const sessionSnapshotVersion = 1

// stateSource is the capability a Source needs for checkpointing: its
// complete production-side state (functional CPU + memory + frontend
// cursor, or trace cursor) serializes and restores deterministically.
type stateSource interface {
	Source
	SaveState(w *checkpoint.Writer)
	RestoreState(r *checkpoint.Reader) error
}

// checkpointState returns src's snapshot capability, or the typed fault
// explaining why the source cannot checkpoint. Wrapped sources (fault
// injectors, stream filters) are rejected explicitly even though their
// embedded Source would promote the methods: the wrapper's own state —
// which bytes it already corrupted, where its freeze point sits — is
// not captured, so a restore through it would silently diverge.
func checkpointState(src Source) (stateSource, error) {
	if _, ok := src.(*wrappedSource); ok {
		return nil, simerr.Unsupported("configuring checkpointing",
			fmt.Errorf("sim: wrapped sources (fault injection, stream filters) cannot checkpoint"))
	}
	if fs, ok := src.(*functionalSource); ok && fs.par != nil {
		return nil, simerr.Unsupported("configuring checkpointing",
			fmt.Errorf("sim: the parallel frontend cannot checkpoint (in-flight producer batches are not deterministic state)"))
	}
	if ts, ok := src.(traceSource); ok {
		if _, ok := ts.src.(interface{ Pos() uint64 }); !ok {
			return nil, simerr.Unsupported("configuring checkpointing",
				fmt.Errorf("sim: trace producer %T exposes no record cursor (Pos)", ts.src))
		}
	}
	cs, ok := src.(stateSource)
	if !ok {
		return nil, simerr.Unsupported("configuring checkpointing",
			fmt.Errorf("sim: source %T does not support state snapshots", src))
	}
	return cs, nil
}

// checkpointEnabled reports whether the configuration asks for
// snapshots.
func (c Config) checkpointEnabled() bool {
	return c.CheckpointEvery > 0 && c.CheckpointDir != ""
}

// Fingerprint summarizes every configuration parameter that the
// serialized state depends on. A snapshot restores only into a session
// whose fingerprint matches — otherwise configuration-sized structures
// (rings, tables) or the simulated schedule itself would diverge from
// the run that wrote it. The wrong-path technique and the consumer lane
// size are deliberately absent: the snapshot instants and every
// serialized structure are identical across lane sizes (lane batching
// is bit-exact), and the degradation ladder resumes a snapshot one
// technique rung down (the policy statistics section is simply skipped
// on a technique mismatch).
//
// The same exclusion argument makes canonical results content-
// addressable: everything this string captures can change result
// bytes, everything it omits provably cannot, which is why the serving
// layer's result cache (internal/resultcache, keyed by specfp
// fingerprints) folds it into its content address.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("max=%d warm=%d lookahead=%d\n%s",
		c.MaxInsts, c.WarmupInsts, c.lookahead(), DescribeConfig(c.Core))
}

// nextCheckpoint returns the first snapshot threshold past insts on the
// every-grid — the alignment that keeps snapshot instants identical
// between an uninterrupted run and any kill/resume chain.
func nextCheckpoint(insts, every uint64) uint64 {
	return every * (insts/every + 1)
}

// checkpointer writes snapshots from the core's lane hook. The first
// write error latches and disables further snapshots; it surfaces in
// Result.Err (lowest precedence) so a full-disk sweep cell is annotated
// rather than silently unprotected.
type checkpointer struct {
	s     *Session
	src   stateSource
	dir   string
	every uint64
	next  uint64
	err   error
}

// newCheckpointer validates the source capability and creates the
// snapshot directory.
func newCheckpointer(s *Session, src Source) (*checkpointer, error) {
	cs, err := checkpointState(src)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return nil, err
	}
	return &checkpointer{
		s:     s,
		src:   cs,
		dir:   s.cfg.CheckpointDir,
		every: s.cfg.CheckpointEvery,
		next:  nextCheckpoint(s.restoredInsts, s.cfg.CheckpointEvery),
	}, nil
}

// onLane runs at every measured lane boundary: past the threshold, it
// serializes the full session state and advances to the next grid
// point.
func (ck *checkpointer) onLane() {
	if ck.err != nil {
		return
	}
	insts := ck.s.core.Stats().Instructions
	if insts < ck.next {
		return
	}
	path, size, err := ck.write(insts)
	if err != nil {
		ck.err = err
		return
	}
	ck.next = nextCheckpoint(insts, ck.every)
	ck.s.view.CheckpointWrite(insts, uint64(size))
	if ck.s.cfg.OnCheckpoint != nil {
		ck.s.cfg.OnCheckpoint(insts, path)
	}
}

// write serializes the session: header (fingerprint, instruction count,
// technique), then source → queue → core → policy statistics. The
// policy section is last so a technique-mismatched resume (ladder
// downgrade) can stop reading before it.
func (ck *checkpointer) write(insts uint64) (string, int, error) {
	s := ck.s
	w := checkpoint.NewWriter()
	w.Section("sim/Session", sessionSnapshotVersion)
	w.String(s.cfg.Fingerprint())
	w.Uint64(insts)
	w.String(s.cfg.WP.String())
	ck.src.SaveState(w)
	s.queue.SaveState(w)
	s.core.SaveState(w)
	s.policy.Stats().SaveState(w)
	data := w.Finish()
	path := filepath.Join(ck.dir, checkpoint.FileName(insts))
	if err := checkpoint.WriteFile(path, data); err != nil {
		return "", 0, err
	}
	return path, len(data), nil
}

// Restore overwrites the session's freshly-built state with a snapshot.
// It must be called before Run; the subsequent Run then skips the
// warmup phase (the snapshot was taken inside the measured phase, past
// warmup) and continues to a Result bit-identical to an uninterrupted
// run. A fingerprint mismatch is a typed simerr.ErrConfig fault; decode
// failures are typed corruption faults. On any error the session is
// left partially overwritten and must be discarded.
func (s *Session) Restore(r *checkpoint.Reader) error {
	cs, err := checkpointState(s.src)
	if err != nil {
		return err
	}
	if err := r.Section("sim/Session", sessionSnapshotVersion); err != nil {
		return err
	}
	fp := r.String()
	insts := r.Uint64()
	kind := r.String()
	if err := r.Err(); err != nil {
		return err
	}
	if fp != s.cfg.Fingerprint() {
		return simerr.Config("restoring snapshot",
			fmt.Errorf("sim: snapshot was written under a different configuration\nsnapshot:\n%s\nresuming:\n%s", fp, s.cfg.Fingerprint()))
	}
	if err := cs.RestoreState(r); err != nil {
		return err
	}
	if err := s.queue.RestoreState(r); err != nil {
		return err
	}
	if err := s.core.RestoreState(r); err != nil {
		return err
	}
	if kind == s.cfg.WP.String() {
		// Same technique: the policy statistics continue. On a ladder
		// downgrade the snapshot's policy counters belong to the higher
		// rung; the fresh policy starts its own count (the result is
		// annotated as degraded either way).
		if err := s.policy.Stats().RestoreState(r); err != nil {
			return err
		}
	}
	s.restored = true
	s.restoredInsts = insts
	s.view.CheckpointRestore(insts)
	return nil
}

// Resume restores the snapshot at snapPath into a fresh session over
// the workload instance and continues the run. The configuration must
// match the one the snapshot was written under (fingerprint-checked);
// the Result is bit-identical to an uninterrupted run of that
// configuration.
func Resume(cfg Config, inst *workloads.Instance, snapPath string) (*Result, error) {
	r, err := checkpoint.ReadFile(snapPath)
	if err != nil {
		return nil, err
	}
	src := NewFunctionalSource(cfg, inst)
	s, err := NewSession(cfg, src)
	if err != nil {
		src.Close()
		return nil, err
	}
	if err := s.Restore(r); err != nil {
		src.Close()
		return nil, err
	}
	res := s.Run()
	cfg.publish(res)
	return res, nil
}

// RunOrResume runs the instance, first restoring the newest snapshot in
// cfg.CheckpointDir when checkpointing is enabled and the directory
// holds one — the crash-safe serving loop's entry point (a fresh or
// empty directory runs from zero). The returned bool reports whether a
// snapshot was restored. Either way the Result is bit-identical to an
// uninterrupted Run of the same configuration.
func RunOrResume(cfg Config, inst *workloads.Instance) (*Result, bool, error) {
	if cfg.checkpointEnabled() {
		snap, err := checkpoint.Latest(cfg.CheckpointDir)
		if err != nil {
			return nil, false, err
		}
		if snap != "" {
			res, err := Resume(cfg, inst, snap)
			return res, true, err
		}
	}
	res, err := Run(cfg, inst)
	return res, false, err
}

// ResumeTrace is Resume for a pre-recorded trace: src must be a fresh
// reader positioned at the start of the same trace (the snapshot's
// cursor is replayed forward over it).
func ResumeTrace(cfg Config, src queue.Producer, snapPath string) (*Result, error) {
	r, err := checkpoint.ReadFile(snapPath)
	if err != nil {
		return nil, err
	}
	s, err := NewSession(cfg, NewTraceSource(src))
	if err != nil {
		return nil, err
	}
	if err := s.Restore(r); err != nil {
		return nil, err
	}
	res := s.Run()
	cfg.publish(res)
	return res, nil
}

// canceler is the cancellation watcher: a goroutine that interrupts the
// source when the run's context is done, unblocking a producer stuck in
// channel or I/O waits. The prompt-stop path is the core's lane hook
// polling the context; this goroutine only exists to release blocked
// waits. stop must be called exactly once.
type canceler struct {
	done chan struct{}
	ack  chan struct{}
}

func startCanceler(ctx context.Context, src Source) *canceler {
	c := &canceler{done: make(chan struct{}), ack: make(chan struct{})}
	go func() {
		defer close(c.ack)
		select {
		case <-c.done:
		case <-ctx.Done():
			interrupt(src)
		}
	}()
	return c
}

func (c *canceler) stop() {
	close(c.done)
	<-c.ack
}
