package sim

import (
	"repro/internal/obs"
)

// This file is the sim layer's half of the observability contract (see
// internal/obs): sessions carry a live *obs.View for sampling hooks,
// and the accepting entry points — Run, RunTrace, RunLadder — publish a
// result's aggregate counters exactly once per accepted result. The
// degradation ladder may run the same cell several times; only the
// result a caller actually receives is counted, so sweep totals (e.g.
// WPGenerated) never double-count retry rungs.

// obsEnabled reports whether any observability output is configured.
func (c Config) obsEnabled() bool { return c.Metrics != nil || c.Trace != nil }

// view builds the per-run instrumentation view, nil when disabled (so
// hot-path hooks reduce to one nil check).
func (c Config) view() *obs.View {
	if !c.obsEnabled() {
		return nil
	}
	return obs.NewView(c.Metrics, c.Trace, c.ObsLabel, c.WP.String())
}

// publish records an accepted result's aggregate counters, labeled by
// the technique that actually ran (after any ladder descent). Callers
// must invoke it at most once per result a caller receives.
func (c Config) publish(r *Result) {
	if c.Metrics == nil || r == nil {
		return
	}
	reg, wl := c.Metrics, c.ObsLabel
	tech := r.WP.String()
	reg.Counter(obs.Key("sim_runs_total", wl, tech)).Inc()
	reg.Counter(obs.Key("sim_instructions_total", wl, tech)).Add(r.Core.Instructions)
	reg.Counter(obs.Key("sim_cycles_total", wl, tech)).Add(r.Core.Cycles)
	reg.Counter(obs.Key("sim_mispredicts_total", wl, tech)).Add(r.Core.Mispredicts)
	reg.Counter(obs.Key("sim_wp_fetched_total", wl, tech)).Add(r.Core.WPFetched)
	reg.Counter(obs.Key("sim_wp_executed_total", wl, tech)).Add(r.Core.WPExecuted)
	reg.Counter(obs.Key("wrongpath_generated_total", wl, tech)).Add(r.Policy.WPGenerated)
	reg.Counter(obs.Key("conv_checked_total", wl, tech)).Add(r.Policy.ConvChecked)
	reg.Counter(obs.Key("conv_detected_total", wl, tech)).Add(r.Policy.ConvDetected)
	if r.Degraded {
		// Labeled by the *requested* technique: degradation rates are a
		// property of what was asked for, not of the rung that rescued it.
		reg.Counter(obs.Key("sim_degraded_runs_total", wl, r.RequestedWP.String())).Inc()
	}
}

// noteRetry counts one degradation-ladder descent (labeled by the
// requested technique) the moment it is decided, so abandoned ladders
// still show their retry cost.
func (c Config) noteRetry(requested string) {
	if c.Metrics == nil {
		return
	}
	c.Metrics.Counter(obs.Key("sim_degrade_retries_total", c.ObsLabel, requested)).Inc()
}
