// Package sim wires the full functional-first simulator together:
// functional CPU → frontend (with optional wrong-path emulation) →
// decoupling queue → out-of-order core with a wrong-path policy. It is
// the library's primary public surface: construct a Config, point it at
// a workload instance, and Run.
//
// Internally every entry point goes through one session layer: a
// Source (live functional frontend, parallel frontend, or trace
// interpreter — the paper's three frontend kinds) feeds a Session,
// which builds queue → policy → core and collects the Result in one
// place. Run/RunTrace are thin wrappers; RunKinds fans independent
// simulations out over the internal/batch worker pool.
package sim

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/workloads"
	"repro/internal/wrongpath"
)

// Config configures one simulation.
type Config struct {
	// Core is the timing-model configuration.
	Core core.Config
	// WP selects the wrong-path modeling technique.
	WP wrongpath.Kind
	// MaxInsts caps the simulated correct-path instructions
	// (0 = run to program completion).
	MaxInsts uint64
	// WarmupInsts functionally warms caches, TLBs, predictor and code
	// cache with this many instructions before detailed simulation —
	// the warming phase of sampled simulation (the paper simulates
	// SimPoint samples; warming plays the same role here).
	WarmupInsts uint64
	// QueueLookahead overrides the decoupling queue's guaranteed
	// run-ahead; 0 selects the default, 2×ROB + front-end buffer + a
	// margin, which is what convergence detection needs to never stall.
	QueueLookahead int
	// PolicyFactory overrides the wrong-path policy construction (used
	// by the ablation experiments, e.g. conv without the independence
	// check). When nil, wrongpath.New(WP) is used. WP should still name
	// the closest standard kind (it controls frontend emulation).
	PolicyFactory func() wrongpath.Policy
	// ParallelFrontend runs the functional simulator in its own
	// goroutine, overlapping it with the performance simulation — the
	// decoupling speedup the paper attributes to functional-first
	// simulation. Results are bit-identical to the synchronous mode.
	ParallelFrontend bool
	// Clock measures Result.Wall (the paper's simulation-speed metric).
	// nil selects the real wall clock; tests inject a fake so no
	// simulation output ever depends on host time.
	Clock Clock
	// Watchdog arms the stall watchdog with this progress budget: if
	// neither the decoupling queue's producer nor its consumer advances
	// within one budget interval, the run aborts with a typed
	// simerr.ErrStall fault in Result.Err. 0 disables the watchdog.
	// Timing uses Clock when it implements AfterClock, the wall clock
	// otherwise; an idle watchdog never influences simulated statistics.
	Watchdog time.Duration
	// Degrade arms the graceful-degradation ladder for the ladder-aware
	// entry points (RunLadder, RunKinds, the experiment runner): on a
	// recoverable fault a job is re-run one technique rung down instead
	// of failing the sweep. Zero value = disabled.
	Degrade DegradePolicy
	// Metrics is the optional observability registry; runs sample live
	// distributions (queue occupancy, peek depth, wrong-path generation
	// latency) into it, and the accepting entry points (Run, RunTrace,
	// RunLadder) publish the accepted result's aggregate counters
	// exactly once. nil disables metrics; a disabled run's simulation
	// output is bit-identical to an instrumented build's.
	Metrics *obs.Registry
	// Trace is the optional cycle-event trace sink (Chrome-trace JSON);
	// each run emits its spans onto its own track. nil disables tracing.
	Trace *obs.TraceSink
	// ObsLabel names the workload in metric labels and trace track names
	// ("gap/bfs"); RunKinds fills it from the workload when empty.
	ObsLabel string
	// Ctx, when non-nil, cancels the run: when it is done, the source is
	// interrupted, the simulation unwinds at the next lane boundary, and
	// Result.Err carries a typed simerr.ErrCanceled fault. Cancellation
	// is an instruction, not a malfunction — the degradation ladder never
	// retries it. nil means the run cannot be canceled.
	Ctx context.Context
	// CheckpointDir, with CheckpointEvery > 0, enables crash-safe
	// checkpointing: the complete deterministic simulation state is
	// written to a versioned, checksummed snapshot file in this directory
	// at the first lane boundary past every CheckpointEvery retired
	// instructions. Resume/ResumeTrace (and the degradation ladder's
	// retry path) restore the newest snapshot and continue to a
	// bit-identical Result. Checkpointing requires a snapshot-capable
	// source: the synchronous functional frontend or a trace reader —
	// not the parallel frontend (its producer goroutine's in-flight
	// batches are not deterministic state) and not fault-injection
	// wrappers.
	CheckpointDir string
	// CheckpointEvery is the snapshot interval in retired instructions;
	// 0 disables checkpointing.
	CheckpointEvery uint64
	// OnCheckpoint, when non-nil, is invoked synchronously on the
	// simulation goroutine after every successful snapshot write — the
	// chaos harness's kill-point hook. It must not touch the session.
	OnCheckpoint func(insts uint64, path string)
}

// clock returns the configured Clock, defaulting to the wall clock.
func (c Config) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return wallClock{}
}

// Default returns the Golden-Cove-like configuration with the given
// wrong-path technique.
func Default(wp wrongpath.Kind) Config {
	return Config{Core: core.DefaultConfig(), WP: wp}
}

func (c Config) lookahead() int {
	if c.QueueLookahead > 0 {
		return c.QueueLookahead
	}
	return 2*c.Core.ROBSize + c.Core.FrontendBuffer + 64
}

// Result collects everything a simulation produces.
type Result struct {
	// WP is the technique that ran.
	WP wrongpath.Kind
	// Core holds the pipeline-level statistics (cycles, IPC, branches,
	// wrong-path instruction counts).
	Core core.Stats
	// Policy holds the wrong-path policy statistics (convergence
	// metrics for the conv technique).
	Policy wrongpath.Stats
	// Cache statistics per level, split correct/wrong path.
	L1I, L1D, L2, LLC cache.LevelStats
	// TLB statistics (zero when the TLBs are disabled).
	ITLB, DTLB cache.LevelStats
	// MemAccesses counts DRAM accesses; WrongMemAccesses those issued
	// by wrong-path requests.
	MemAccesses      uint64
	WrongMemAccesses uint64
	// FunctionalInsts is the number of correct-path instructions the
	// functional simulator executed.
	FunctionalInsts uint64
	// WPEmulatedPaths/Insts count the frontend's functional wrong-path
	// emulations (wpemul mode only).
	WPEmulatedPaths uint64
	WPEmulatedInsts uint64
	// Output is the program's printed output.
	Output []byte
	// Wall is the host wall-clock time of the run (for the paper's
	// simulation-speed comparison).
	Wall time.Duration
	// Err records a fault that ended the run early, if any: a
	// functional-simulation error, a typed simerr fault from the trace
	// reader (ErrTraceCorrupt), a recovered producer panic
	// (ErrWorkerPanic), or a watchdog abort (ErrStall).
	Err error
	// RequestedWP is the technique originally requested; it differs
	// from WP when the degradation ladder re-ran the job a rung down.
	RequestedWP wrongpath.Kind
	// Degraded marks a result the ladder produced below the requested
	// rung, or a partial-prefix result kept from a corrupt trace;
	// DegradeFault is the typed fault that forced it (matches
	// simerr.ErrDegraded and the original fault class).
	Degraded     bool
	DegradeFault error
}

// IPC returns the projected instructions per cycle.
func (r *Result) IPC() float64 { return r.Core.IPC() }

// Run simulates the workload instance under the configuration. It is a
// thin wrapper over the session layer: a live functional Source plus a
// Session, with results identical to constructing both by hand.
func Run(cfg Config, inst *workloads.Instance) (*Result, error) {
	src := NewFunctionalSource(cfg, inst)
	s, err := NewSession(cfg, src)
	if err != nil {
		src.Close()
		return nil, err
	}
	res := s.Run()
	cfg.publish(res)
	return res, nil
}

// RunTrace simulates a pre-recorded instruction trace (see
// internal/tracefile). Per the paper's §III-B, a trace frontend cannot
// support functional wrong-path emulation — the trace only contains
// correct-path instructions — so wrongpath.WPEmul is rejected by the
// session's capability check; every reconstruction-based technique
// works, because those only need the decode information and run-ahead
// that the trace preserves.
func RunTrace(cfg Config, src queue.Producer) (*Result, error) {
	s, err := NewSession(cfg, NewTraceSource(src))
	if err != nil {
		return nil, err
	}
	res := s.Run()
	cfg.publish(res)
	return res, nil
}

// Error is the paper's accuracy metric: the relative difference in
// projected performance (IPC) between a technique and the reference
// (wrong-path emulation). Negative means the technique underestimates
// performance.
func Error(tech, ref *Result) float64 {
	if ref.IPC() == 0 {
		return 0
	}
	return (tech.IPC() - ref.IPC()) / ref.IPC()
}

// RunKinds simulates the instance-factory under each given technique
// and returns results in kinds order — the deterministic, ordered
// counterpart of RunAll. A fresh instance is built per run so each
// technique sees pristine state; the runs are independent and execute
// on the batch engine with the given worker count (<= 0 one per host
// core, 1 serial). Simulation results are bit-identical for any worker
// count; only the per-run Wall timings vary with contention, so pass
// workers=1 when they matter.
func RunKinds(cfg Config, w workloads.Workload, kinds []wrongpath.Kind, workers int) ([]*Result, error) {
	jobs := make([]func() (*Result, error), len(kinds))
	for i, k := range kinds {
		jobs[i] = func() (*Result, error) {
			inst, err := w.Build()
			if err != nil {
				return nil, fmt.Errorf("sim: building %s/%s: %w", w.Suite, w.Name, err)
			}
			c := cfg
			c.WP = k
			if c.MaxInsts == 0 {
				c.MaxInsts = inst.SuggestedMaxInsts
			}
			if c.obsEnabled() && c.ObsLabel == "" {
				c.ObsLabel = w.Suite + "/" + w.Name
			}
			if c.CheckpointDir != "" {
				// One snapshot directory per technique: concurrent cells
				// must never overwrite each other's snapshots, and a resume
				// must find its own technique's file.
				c.CheckpointDir = filepath.Join(c.CheckpointDir, k.String())
			}
			var r *Result
			if c.Degrade.Enabled() {
				// Ladder path: the first attempt consumes the prebuilt
				// instance, every retry builds a fresh one (a run
				// consumes its instance's state).
				first := inst
				r, err = RunLadder(c, func(cc Config) (Source, error) {
					if first != nil {
						i := first
						first = nil
						return NewFunctionalSource(cc, i), nil
					}
					retry, err := w.Build()
					if err != nil {
						return nil, fmt.Errorf("sim: rebuilding %s/%s: %w", w.Suite, w.Name, err)
					}
					return NewFunctionalSource(cc, retry), nil
				})
			} else {
				r, err = Run(c, inst)
			}
			if err != nil {
				return nil, fmt.Errorf("sim: running %s/%s under %v: %w", w.Suite, w.Name, k, err)
			}
			return r, nil
		}
	}
	results := batch.RunContext(cfg.Ctx, jobs, workers)
	if err := batch.FirstErr(results); err != nil {
		return nil, err
	}
	return batch.Values(results), nil
}

// RunAll simulates the instance-factory under every technique and
// returns results indexed by kind; it runs serially (RunKinds with
// workers=1) so per-run Wall timings stay uncontended. The map's
// iteration order is random per Go semantics — consumers that render or
// aggregate order-sensitively must index it by wrongpath.Kinds() (as
// the experiment drivers do) or use RunKinds directly, which returns
// the ordered slice.
func RunAll(cfg Config, w workloads.Workload) (map[wrongpath.Kind]*Result, error) {
	kinds := wrongpath.Kinds()
	results, err := RunKinds(cfg, w, kinds, 1)
	if err != nil {
		return nil, err
	}
	out := make(map[wrongpath.Kind]*Result, len(kinds))
	for i, k := range kinds {
		out[k] = results[i]
	}
	return out, nil
}

// DescribeConfig renders the core configuration as the paper's Table I:
// the simulated core parameters.
func DescribeConfig(cfg core.Config) string {
	var b strings.Builder
	h := cfg.Hierarchy
	fmt.Fprintf(&b, "%-28s %d-wide fetch, %d-wide dispatch, %d-wide issue, %d-wide commit\n",
		"Pipeline", cfg.FetchWidth, cfg.DispatchWidth, cfg.IssueWidth, cfg.CommitWidth)
	fmt.Fprintf(&b, "%-28s %d entries (+%d front-end buffer)\n", "Reorder buffer", cfg.ROBSize, cfg.FrontendBuffer)
	fmt.Fprintf(&b, "%-28s %d cycles front-end depth, %d cycles redirect penalty\n",
		"Pipeline depth", cfg.FetchToDispatch, cfg.RedirectPenalty)
	fmt.Fprintf(&b, "%-28s tournament bimodal(%d)+gshare(%d), %d-entry RAS, %d-entry indirect\n",
		"Branch predictor",
		1<<uint(cfg.BranchPred.BimodalBits), 1<<uint(cfg.BranchPred.GShareBits),
		cfg.BranchPred.RASSize, 1<<uint(cfg.BranchPred.IndirectBits))
	for _, lv := range []cache.Config{h.L1I, h.L1D, h.L2, h.LLC} {
		fmt.Fprintf(&b, "%-28s %d KB, %d-way, %d B lines, %d-cycle hit\n",
			lv.Name, lv.SizeBytes>>10, lv.Ways, lv.LineBytes, lv.HitLatency)
	}
	if h.ITLB.Entries > 0 {
		fmt.Fprintf(&b, "%-28s %d entries, %d-way, %d-cycle walk\n", "ITLB", h.ITLB.Entries, h.ITLB.Ways, h.ITLB.WalkLatency)
	}
	if h.DTLB.Entries > 0 {
		fmt.Fprintf(&b, "%-28s %d entries, %d-way, %d-cycle walk\n", "DTLB", h.DTLB.Entries, h.DTLB.Ways, h.DTLB.WalkLatency)
	}
	fmt.Fprintf(&b, "%-28s %d cycles\n", "Memory latency", h.MemLatency)
	if h.MemGapCycles > 0 {
		fmt.Fprintf(&b, "%-28s 1 line / %d cycles\n", "Memory bandwidth", h.MemGapCycles)
	}
	fmt.Fprintf(&b, "%-28s %d-entry store queue\n", "Store queue", cfg.StoreQueueSize)
	return b.String()
}
