package sim

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// TestRunAllTechniques runs one branch-heavy GAP kernel under all four
// wrong-path techniques end to end and checks the structural properties
// each technique must exhibit.
func TestRunAllTechniques(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	results, err := RunAll(Default(wrongpath.NoWP), w)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("%v: functional error: %v", k, r.Err)
		}
		if r.Core.Instructions == 0 || r.Core.Cycles == 0 {
			t.Fatalf("%v: empty simulation: %+v", k, r.Core)
		}
		ipc := r.IPC()
		if ipc <= 0 || ipc > 8 {
			t.Fatalf("%v: implausible IPC %f", k, ipc)
		}
		t.Logf("%v: insts=%d cycles=%d IPC=%.3f mispredicts=%d wpFetched=%d wpExecuted=%d",
			k, r.Core.Instructions, r.Core.Cycles, ipc,
			r.Core.Mispredicts, r.Core.WPFetched, r.Core.WPExecuted)
	}

	// All techniques must retire the same correct-path instructions.
	base := results[wrongpath.NoWP].Core.Instructions
	for k, r := range results {
		if r.Core.Instructions != base {
			t.Errorf("%v retired %d instructions, nowp retired %d", k, r.Core.Instructions, base)
		}
	}

	if got := results[wrongpath.NoWP].Core.WPFetched; got != 0 {
		t.Errorf("nowp fetched %d wrong-path instructions, want 0", got)
	}
	for _, k := range []wrongpath.Kind{wrongpath.InstRec, wrongpath.Conv, wrongpath.WPEmul} {
		if results[k].Core.WPFetched == 0 {
			t.Errorf("%v fetched no wrong-path instructions", k)
		}
	}

	conv := results[wrongpath.Conv]
	if conv.Policy.ConvChecked == 0 {
		t.Error("conv: no convergence checks ran")
	}
	if conv.Policy.ConvDetected == 0 {
		t.Error("conv: no convergence detected (BFS inner loops should converge)")
	}
	if conv.Policy.WPAddrRecovered == 0 {
		t.Error("conv: no addresses recovered")
	}
	if conv.Policy.WPAddrRecovered > conv.Policy.WPMemOps {
		t.Error("conv: recovered more addresses than wrong-path memory ops")
	}

	emul := results[wrongpath.WPEmul]
	if emul.WPEmulatedPaths == 0 || emul.WPEmulatedInsts == 0 {
		t.Error("wpemul: frontend emulated no wrong paths")
	}
	// The frontend's predictor copy must detect exactly the
	// mispredictions the core detects.
	if emul.WPEmulatedPaths != emul.Core.Mispredicts {
		t.Errorf("wpemul: frontend emulated %d paths but core saw %d mispredicts",
			emul.WPEmulatedPaths, emul.Core.Mispredicts)
	}
	// Wrong-path loads in wpemul carry addresses and must reach the
	// data hierarchy.
	if emul.L1D.Wrong.Accesses == 0 {
		t.Error("wpemul: no wrong-path data-cache accesses")
	}
	// InstRec never knows addresses, so it must never touch the data
	// hierarchy on the wrong path.
	if got := results[wrongpath.InstRec].L1D.Wrong.Accesses; got != 0 {
		t.Errorf("instrec: %d wrong-path data-cache accesses, want 0", got)
	}
	// But it does touch the instruction cache on the wrong path.
	if results[wrongpath.InstRec].L1I.Wrong.Accesses == 0 {
		t.Error("instrec: no wrong-path instruction-cache accesses")
	}
}

// TestDeterminism: identical configurations must produce bit-identical
// results.
func TestDeterminism(t *testing.T) {
	w := gap.CC(gap.TestParams())
	var cycles [2]uint64
	for i := range cycles {
		r, err := Run(Default(wrongpath.Conv), w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = r.Core.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("nondeterministic: %d vs %d cycles", cycles[0], cycles[1])
	}
}

// TestParallelFrontendIdenticalResults: the parallel frontend changes
// host wall-clock behaviour only; every simulation statistic must be
// bit-identical to the synchronous mode — for all techniques, including
// wpemul whose wrong-path emulation runs inside the producer goroutine.
func TestParallelFrontendIdenticalResults(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
		cfg := Default(k)
		seq, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		cfg.ParallelFrontend = true
		par, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if seq.Core.Cycles != par.Core.Cycles || seq.Core.Instructions != par.Core.Instructions {
			t.Errorf("%v: parallel (%d cycles/%d insts) != sequential (%d cycles/%d insts)",
				k, par.Core.Cycles, par.Core.Instructions, seq.Core.Cycles, seq.Core.Instructions)
		}
		if seq.Core.WPFetched != par.Core.WPFetched || seq.L1D != par.L1D {
			t.Errorf("%v: parallel wrong-path/cache stats diverge", k)
		}
	}
}

// TestPerfectPredictionMode: with the oracle predictor (a mode only a
// functional-first simulator can offer, per the paper's flexibility
// argument) there are no mispredictions, no wrong path, and performance
// is strictly better than with a real predictor.
func TestPerfectPredictionMode(t *testing.T) {
	w := gap.BFS(gap.TestParams())

	real, err := Run(Default(wrongpath.NoWP), w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(wrongpath.WPEmul)
	cfg.Core.BranchPred.Predictor = branch.PredictorPerfect
	oracle, err := Run(cfg, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Core.Mispredicts != 0 {
		t.Errorf("oracle mispredicted %d times", oracle.Core.Mispredicts)
	}
	if oracle.Core.WPFetched != 0 {
		t.Errorf("oracle fetched %d wrong-path instructions", oracle.Core.WPFetched)
	}
	if oracle.WPEmulatedPaths != 0 {
		t.Errorf("oracle frontend emulated %d wrong paths", oracle.WPEmulatedPaths)
	}
	// The fair comparison is against nowp (same zero wrong-path cache
	// activity): removing mispredict stalls can only help. Note that the
	// oracle can legitimately lose to wpemul with a *real* predictor —
	// on miss-bound kernels, wrong-path execution is an accidental
	// runahead prefetcher whose benefit exceeds the mispredict penalty,
	// echoing Mutlu et al.'s observation that wrong-path references are
	// often beneficial.
	if oracle.IPC() <= real.IPC() {
		t.Errorf("oracle IPC %.3f not above nowp real-predictor IPC %.3f", oracle.IPC(), real.IPC())
	}
}

// TestTAGEPredictorRuns: the TAGE organization works end to end and
// stays in sync between core and wpemul frontend.
func TestTAGEPredictorRuns(t *testing.T) {
	w := gap.CC(gap.TestParams())
	cfg := Default(wrongpath.WPEmul)
	cfg.Core.BranchPred.Predictor = branch.PredictorTAGE
	res, err := Run(cfg, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if res.WPEmulatedPaths != res.Core.Mispredicts {
		t.Errorf("TAGE: frontend emulated %d paths, core saw %d mispredicts — predictor copies out of sync",
			res.WPEmulatedPaths, res.Core.Mispredicts)
	}
}

// TestWarmupImprovesSample: functional warming fills caches, TLBs and
// predictor before the measured window, so the warmed sample projects
// higher IPC than a cold one — and warmup instructions never count in
// the measured statistics.
func TestWarmupImprovesSample(t *testing.T) {
	w := gap.CC(gap.TestParams())

	cold := Default(wrongpath.NoWP)
	cold.MaxInsts = 30_000
	coldRes, err := Run(cold, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	warm := cold
	warm.WarmupInsts = 60_000
	warmRes, err := Run(warm, w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Core.Instructions != coldRes.Core.Instructions {
		t.Fatalf("warmup leaked into measured instructions: %d vs %d",
			warmRes.Core.Instructions, coldRes.Core.Instructions)
	}
	if warmRes.IPC() <= coldRes.IPC() {
		t.Errorf("warmed IPC %.3f not above cold IPC %.3f", warmRes.IPC(), coldRes.IPC())
	}
	// The two windows cover different code, but the warmed one must not
	// report the cold window's compulsory misses.
	if warmRes.L1D.Correct.MissRate() >= coldRes.L1D.Correct.MissRate() {
		t.Errorf("warmed L1D miss rate %.3f not below cold %.3f",
			warmRes.L1D.Correct.MissRate(), coldRes.L1D.Correct.MissRate())
	}
}

// TestErrorMetric checks the sign convention of the accuracy metric.
func TestErrorMetric(t *testing.T) {
	slow := &Result{}
	slow.Core.Instructions = 1000
	slow.Core.Cycles = 2000 // IPC 0.5
	fast := &Result{}
	fast.Core.Instructions = 1000
	fast.Core.Cycles = 1000 // IPC 1.0
	if e := Error(slow, fast); e != -0.5 {
		t.Fatalf("Error(slow, fast) = %f, want -0.5", e)
	}
	if e := Error(fast, fast); e != 0 {
		t.Fatalf("Error(fast, fast) = %f, want 0", e)
	}
	// Zero-denominator audit: an empty reference (zero IPC) must yield a
	// clean zero error, not NaN/Inf.
	empty := &Result{}
	if e := Error(fast, empty); e != 0 {
		t.Fatalf("Error(fast, empty-ref) = %f, want 0", e)
	}
	if e := Error(empty, empty); e != 0 {
		t.Fatalf("Error(empty, empty) = %f, want 0", e)
	}
}
