package sim

import "time"

// Clock abstracts wall-time measurement so simulated results never
// depend on the host clock: the timing model is driven purely by
// simulated cycles, and the only wall-time consumer is the Result.Wall
// speed metric. Injecting a Clock keeps that measurement out of the
// simulation's deterministic core — tests inject a fake, and the
// determinism analyzer (cmd/wplint) forbids direct time.Now use in
// internal/ packages.
type Clock interface {
	// Now returns the current time; successive calls must be monotonic
	// for duration measurement.
	Now() time.Time
}

// AfterClock is the optional Clock extension the stall watchdog needs:
// a timer channel. A Config.Clock that implements it drives the
// watchdog deterministically (the frozen-producer tests tick the
// channel themselves); one that does not falls back to the wall clock
// for watchdog timing only — Result.Wall still uses the configured
// Clock.
type AfterClock interface {
	Clock
	// After returns a channel that delivers one time value after d.
	After(d time.Duration) <-chan time.Time
}

// wallClock is the real clock used when Config.Clock is nil. It is the
// one approved wall-time shim in the simulation packages.
type wallClock struct{}

func (wallClock) Now() time.Time {
	return time.Now() //wplint:allow determinism -- the single approved wall-clock shim behind the Clock interface
}

// After implements AfterClock with a real timer; the watchdog is the
// only consumer and never influences simulated statistics.
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FixedClock is a deterministic Clock for tests: every Now call
// advances the reported time by Step.
type FixedClock struct {
	// T is the time the next Now call returns.
	T time.Time
	// Step is added to T after every Now call.
	Step time.Duration
}

// Now returns the current fake time and advances it by Step.
func (c *FixedClock) Now() time.Time {
	t := c.T
	c.T = t.Add(c.Step)
	return t
}
