package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/wrongpath"
)

// Session is one wired-up simulation: a Source feeding the decoupling
// queue, a wrong-path policy, and the out-of-order core, constructed
// from a Config in exactly one place. Run/RunTrace are thin wrappers
// over it; construct a Session directly to supply a custom Source.
type Session struct {
	cfg    Config
	src    Source
	queue  *queue.Queue
	policy wrongpath.Policy
	core   *core.Core
}

// NewSession validates the configuration against the source's
// capabilities and builds queue → policy → core. On error nothing is
// retained; the caller still owns (and must Close) the source.
func NewSession(cfg Config, src Source) (*Session, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.WP == wrongpath.WPEmul && !src.SupportsWPEmul() {
		return nil, fmt.Errorf("sim: wrong-path emulation requires a live functional frontend, not a trace (paper §III-B)")
	}
	q := queue.New(src, cfg.lookahead())
	var policy wrongpath.Policy
	if cfg.PolicyFactory != nil {
		policy = cfg.PolicyFactory()
	} else {
		policy = wrongpath.New(cfg.WP)
	}
	c, err := core.New(cfg.Core, q, policy)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, src: src, queue: q, policy: policy, core: c}, nil
}

// Run executes the warmup and measured simulation, closes the source,
// and collects the Result. It is single-shot: the session's pipeline
// state is consumed by the run.
func (s *Session) Run() *Result {
	clk := s.cfg.clock()
	start := clk.Now()
	stats := s.core.RunWarmup(s.cfg.WarmupInsts, s.cfg.MaxInsts)
	wall := clk.Now().Sub(start)
	s.src.Close()

	h := s.core.Hierarchy()
	res := &Result{
		WP:               s.cfg.WP,
		Core:             stats,
		Policy:           *s.policy.Stats(),
		L1I:              h.L1I().Stats,
		L1D:              h.L1D().Stats,
		L2:               h.L2().Stats,
		LLC:              h.LLC().Stats,
		MemAccesses:      h.MemAccesses,
		WrongMemAccesses: h.WrongMemAccesses,
		Wall:             wall,
	}
	if h.ITLB() != nil {
		res.ITLB = h.ITLB().Stats
	}
	if h.DTLB() != nil {
		res.DTLB = h.DTLB().Stats
	}
	s.src.Collect(res)
	return res
}
