package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/simerr"
	"repro/internal/wrongpath"
)

// Session is one wired-up simulation: a Source feeding the decoupling
// queue, a wrong-path policy, and the out-of-order core, constructed
// from a Config in exactly one place. Run/RunTrace are thin wrappers
// over it; construct a Session directly to supply a custom Source.
type Session struct {
	cfg    Config
	src    Source
	tap    *progressTap // non-nil iff cfg.Watchdog > 0
	queue  *queue.Queue
	policy wrongpath.Policy
	core   *core.Core
	view   *obs.View // nil when observability is disabled

	// restored marks a session whose state was overwritten by a snapshot
	// (Restore); Run then skips the warmup phase, which the snapshot has
	// already passed through. restoredInsts is the snapshot's retired
	// instruction count — the checkpoint grid resumes from there.
	restored      bool
	restoredInsts uint64
}

// NewSession validates the configuration against the source's
// capabilities and builds queue → policy → core. On error nothing is
// retained; the caller still owns (and must Close) the source. A
// capability mismatch is a typed simerr.ErrUnsupported fault — the
// recoverable class the degradation ladder retries a rung down.
func NewSession(cfg Config, src Source) (*Session, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.WP == wrongpath.WPEmul && !src.SupportsWPEmul() {
		return nil, simerr.Unsupported("configuring session",
			fmt.Errorf("sim: wrong-path emulation requires a live functional frontend, not a trace (paper §III-B)"))
	}
	if cfg.checkpointEnabled() {
		if cfg.ParallelFrontend {
			return nil, simerr.Config("configuring session",
				fmt.Errorf("sim: checkpointing and the parallel frontend are mutually exclusive (results are bit-identical either way; drop one)"))
		}
		if _, err := checkpointState(src); err != nil {
			return nil, err
		}
	}
	s := &Session{cfg: cfg, src: src}
	var producer queue.Producer = src
	if cfg.Watchdog > 0 {
		// Interpose the progress tap so the watchdog goroutine can
		// sample production without touching the (single-consumer) queue
		// internals.
		s.tap = &progressTap{src: src}
		producer = s.tap
	}
	q, err := queue.New(producer, cfg.lookahead())
	if err != nil {
		return nil, err
	}
	s.queue = q
	if cfg.PolicyFactory != nil {
		s.policy = cfg.PolicyFactory()
	} else {
		s.policy = wrongpath.New(cfg.WP)
	}
	c, err := core.New(cfg.Core, s.queue, s.policy)
	if err != nil {
		return nil, err
	}
	s.core = c
	if p, ok := src.(interface{ Program() *isa.Program }); ok {
		// Predecode the static program into the code cache so first
		// deliveries and wrong-path walks find their decode records
		// already classified. Lookup semantics — and therefore results —
		// are unchanged: predecoded entries still miss until delivered.
		c.CodeCache().Predecode(p.Program())
	}
	if s.view = cfg.view(); s.view != nil {
		s.core.SetObs(s.view)
	}
	return s, nil
}

// Run executes the warmup and measured simulation, closes the source,
// and collects the Result. It is single-shot: the session's pipeline
// state is consumed by the run.
//
// With Config.Watchdog set, a stall watchdog samples both sides of the
// decoupling queue while the run is in flight; if it fires, the source
// is interrupted, the run unwinds to an early end of stream, and
// Result.Err carries the typed simerr.ErrStall diagnostic. An idle
// watchdog leaves the Result bit-identical to an unwatched run.
func (s *Session) Run() *Result {
	clk := s.cfg.clock()
	var wd *watchdog
	if s.cfg.Watchdog > 0 {
		wd = startWatchdog(s.cfg.watchdogClock(), s.cfg.Watchdog, s.tap, s.queue, s.src, s.cfg.WP.String(), s.view)
	}
	ctx := s.cfg.Ctx
	var cn *canceler
	if ctx != nil {
		cn = startCanceler(ctx, s.src)
	}
	var ck *checkpointer
	var ckErr error
	if s.cfg.checkpointEnabled() {
		ck, ckErr = newCheckpointer(s, s.src)
	}
	if ck != nil || ctx != nil {
		// The lane hook is the deterministic supervision point: snapshots
		// are written exactly at lane boundaries (the only instant the
		// core's transient state is empty), and cancellation is honored
		// there even when the source never blocks (so the canceler's
		// interrupt alone would not stop it).
		s.core.SetLaneHook(func() bool {
			if ck != nil {
				ck.onLane()
			}
			return ctx == nil || ctx.Err() == nil
		})
	}
	warmup := s.cfg.WarmupInsts
	if s.restored {
		// The snapshot was taken inside the measured phase: warmup (and
		// its statistics reset) already happened before it was written.
		warmup = 0
	}
	start := clk.Now()
	stats := s.core.RunWarmup(warmup, s.cfg.MaxInsts)
	wall := clk.Now().Sub(start)
	if wd != nil {
		wd.stop()
	}
	if cn != nil {
		cn.stop()
	}
	s.src.Close()

	h := s.core.Hierarchy()
	res := &Result{
		WP:               s.cfg.WP,
		RequestedWP:      s.cfg.WP,
		Core:             stats,
		Policy:           *s.policy.Stats(),
		L1I:              h.L1I().Stats,
		L1D:              h.L1D().Stats,
		L2:               h.L2().Stats,
		LLC:              h.LLC().Stats,
		MemAccesses:      h.MemAccesses,
		WrongMemAccesses: h.WrongMemAccesses,
		Wall:             wall,
	}
	if h.ITLB() != nil {
		res.ITLB = h.ITLB().Stats
	}
	if h.DTLB() != nil {
		res.DTLB = h.DTLB().Stats
	}
	s.src.Collect(res)
	if res.Err == nil {
		if ckErr != nil {
			// Checkpointing could not even start; the run itself is
			// complete, but the cell's crash-safety promise was broken.
			res.Err = ckErr
		} else if ck != nil && ck.err != nil {
			res.Err = ck.err
		}
	}
	if wd != nil {
		if ferr := wd.Fault(); ferr != nil {
			// The stall is the root cause of whatever truncated state
			// Collect reported; it wins the Err slot.
			res.Err = ferr
		}
	}
	if ctx != nil && ctx.Err() != nil {
		// Cancellation outranks everything: whatever else broke, the
		// operator asked the run to stop, and the ladder must not retry.
		res.Err = &simerr.Fault{
			Kind:      simerr.ErrCanceled,
			Op:        "simulation run",
			Technique: s.cfg.WP.String(),
			Consumed:  stats.Instructions,
			Err:       ctx.Err(),
		}
	}
	return res
}
