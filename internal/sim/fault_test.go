package sim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/queue"
	"repro/internal/simerr"
	"repro/internal/tracefile"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// recordTrace records the BFS test workload into an in-memory trace.
func recordTrace(t *testing.T) []byte {
	t.Helper()
	inst := gap.BFS(gap.TestParams()).MustBuild()
	fe := frontend.New(functional.New(inst.Prog, inst.Mem, inst.StackTop))
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.Record(fe, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// traceLadderSource builds a fresh trace source per ladder attempt.
func traceLadderSource(t *testing.T, data []byte) func(Config) (Source, error) {
	t.Helper()
	return func(Config) (Source, error) {
		r, err := tracefile.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return NewTraceSource(r), nil
	}
}

// stallClock drives the watchdog deterministically: Now is a fixed
// clock, and every After channel fires once the trigger (the Freezer's
// Frozen signal) is closed — so the watchdog samples exactly from the
// moment the injected freeze engages.
type stallClock struct {
	fc   FixedClock
	trig <-chan struct{}
}

func (c *stallClock) Now() time.Time { return c.fc.Now() }

func (c *stallClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		<-c.trig
		ch <- time.Time{}
	}()
	return ch
}

// runFrozen runs the BFS workload with a producer frozen at the n-th
// instruction and a watchdog on the deterministic stall clock.
func runFrozen(t *testing.T, n uint64) *Result {
	t.Helper()
	cfg := Default(wrongpath.Conv)
	inst := gap.BFS(gap.TestParams()).MustBuild()
	var fz *faultinject.Freezer
	src := WrapSource(NewFunctionalSource(cfg, inst), func(p queue.Producer) queue.Producer {
		fz = faultinject.FreezeAt(p, n)
		return fz
	})
	cfg.Clock = &stallClock{trig: fz.Frozen()}
	cfg.Watchdog = time.Second // interval semantics come from the stall clock
	s, err := NewSession(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

// TestWatchdogFiresDeterministicallyOnFrozenProducer: the acceptance
// scenario. A frozen producer must not hang the run: the watchdog
// detects the stall, interrupts the source, and the Result carries a
// typed ErrStall with a deterministic diagnostic snapshot — identical
// across repeated runs.
func TestWatchdogFiresDeterministicallyOnFrozenProducer(t *testing.T) {
	const freezeAt = 500
	a := runFrozen(t, freezeAt)
	if !errors.Is(a.Err, simerr.ErrStall) {
		t.Fatalf("Result.Err = %v, want ErrStall class", a.Err)
	}
	var f *simerr.Fault
	if !errors.As(a.Err, &f) {
		t.Fatal("stall error is not a *simerr.Fault")
	}
	if f.Fetched != freezeAt-1 {
		t.Errorf("snapshot fetched = %d, want %d (instructions before the freeze)", f.Fetched, freezeAt-1)
	}
	if f.PC == 0 {
		t.Error("snapshot carries no PC")
	}
	if f.Consumed > f.Fetched {
		t.Errorf("snapshot consumed %d > fetched %d", f.Consumed, f.Fetched)
	}
	if f.Technique != "conv" {
		t.Errorf("snapshot technique = %q, want conv", f.Technique)
	}

	b := runFrozen(t, freezeAt)
	var g *simerr.Fault
	if !errors.As(b.Err, &g) {
		t.Fatalf("second run: Err = %v", b.Err)
	}
	if f.Fetched != g.Fetched || f.Consumed != g.Consumed || f.PC != g.PC {
		t.Errorf("watchdog snapshot not deterministic:\n run1 fetched=%d consumed=%d pc=%#x\n run2 fetched=%d consumed=%d pc=%#x",
			f.Fetched, f.Consumed, f.PC, g.Fetched, g.Consumed, g.PC)
	}
}

// TestWatchdogIdleBitIdentical: an armed-but-never-firing watchdog must
// not perturb any simulated statistic — the fault-tolerance layer costs
// nothing on the fault-free path.
func TestWatchdogIdleBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
		plain, err := Run(Default(k), w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default(k)
		cfg.Watchdog = time.Minute
		watched, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if watched.Err != nil {
			t.Fatalf("%v: idle watchdog produced a fault: %v", k, watched.Err)
		}
		if plain.Core != watched.Core || plain.Policy != watched.Policy {
			t.Errorf("%v: idle watchdog changed simulated statistics", k)
		}
		if plain.L1D != watched.L1D || plain.LLC != watched.LLC {
			t.Errorf("%v: idle watchdog changed cache statistics", k)
		}
		if plain.FunctionalInsts != watched.FunctionalInsts {
			t.Errorf("%v: idle watchdog changed functional instruction count", k)
		}
	}
}

// TestLadderDegradesUnsupported: wpemul on a trace source is the
// paper's own unsupported case; with the ladder armed it must re-run as
// conv and annotate, not fail.
func TestLadderDegradesUnsupported(t *testing.T) {
	data := recordTrace(t)
	cfg := Default(wrongpath.WPEmul)
	cfg.Degrade = DegradePolicy{MaxRetries: 2}
	res, err := RunLadder(cfg, traceLadderSource(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if res.WP != wrongpath.Conv || res.RequestedWP != wrongpath.WPEmul || !res.Degraded {
		t.Fatalf("degradation not recorded: WP=%v requested=%v degraded=%v", res.WP, res.RequestedWP, res.Degraded)
	}
	if !errors.Is(res.DegradeFault, simerr.ErrDegraded) || !errors.Is(res.DegradeFault, simerr.ErrUnsupported) {
		t.Errorf("DegradeFault = %v, want ErrDegraded wrapping ErrUnsupported", res.DegradeFault)
	}

	// The degraded cell must equal a direct conv replay bit-for-bit.
	direct, err := RunLadder(Default(wrongpath.Conv), traceLadderSource(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if res.Core != direct.Core {
		t.Error("degraded conv run differs from a direct conv run")
	}
}

// TestLadderDisabledStillRejectsUnsupported: without the ladder the
// capability fault surfaces as a typed error, same as before.
func TestLadderDisabledStillRejectsUnsupported(t *testing.T) {
	data := recordTrace(t)
	_, err := RunLadder(Default(wrongpath.WPEmul), traceLadderSource(t, data))
	if !errors.Is(err, simerr.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported class", err)
	}
}

// TestLadderKeepsCorruptPrefix: a corrupt trace tail keeps the valid
// prefix as an annotated partial result instead of re-running (the same
// bytes would fail again) or failing the cell.
func TestLadderKeepsCorruptPrefix(t *testing.T) {
	data := recordTrace(t)
	cut := faultinject.Truncate(data, int64(len(data)-3)) // mid-record: records are >= 8 bytes
	cfg := Default(wrongpath.Conv)
	cfg.Degrade = DegradePolicy{MaxRetries: 2}
	res, err := RunLadder(cfg, traceLadderSource(t, cut))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.WP != wrongpath.Conv {
		t.Fatalf("partial prefix not annotated: degraded=%v WP=%v", res.Degraded, res.WP)
	}
	if !errors.Is(res.DegradeFault, simerr.ErrTraceCorrupt) || !errors.Is(res.DegradeFault, simerr.ErrDegraded) {
		t.Errorf("DegradeFault = %v, want ErrDegraded wrapping ErrTraceCorrupt", res.DegradeFault)
	}
	if res.Core.Instructions == 0 {
		t.Error("partial result simulated nothing")
	}
}

// TestLadderDegradesOnWorkerPanic: a panic on the first attempt is
// recovered and the job re-runs a rung down with a fresh source.
func TestLadderDegradesOnWorkerPanic(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg := Default(wrongpath.Conv)
	cfg.Degrade = DegradePolicy{MaxRetries: 1}
	attempts := 0
	res, err := RunLadder(cfg, func(c Config) (Source, error) {
		attempts++
		src := NewFunctionalSource(c, w.MustBuild())
		if attempts == 1 {
			return WrapSource(src, func(p queue.Producer) queue.Producer {
				return faultinject.PanicAt(p, 100, "injected worker fault")
			}), nil
		}
		return src, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("ladder made %d attempts, want 2", attempts)
	}
	if res.WP != wrongpath.InstRec || res.RequestedWP != wrongpath.Conv || !res.Degraded {
		t.Fatalf("degradation not recorded: WP=%v requested=%v degraded=%v", res.WP, res.RequestedWP, res.Degraded)
	}
	if !errors.Is(res.DegradeFault, simerr.ErrWorkerPanic) {
		t.Errorf("DegradeFault = %v, want ErrWorkerPanic cause", res.DegradeFault)
	}

	// The degraded instrec result must match a clean instrec run.
	direct, err := Run(Default(wrongpath.InstRec), w.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if res.Core != direct.Core {
		t.Error("degraded instrec run differs from a direct instrec run")
	}
}

// TestLadderExhaustsToTypedError: a fault on every rung within the
// retry budget fails the cell with the typed fault, not a crash.
func TestLadderExhaustsToTypedError(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg := Default(wrongpath.Conv)
	cfg.Degrade = DegradePolicy{MaxRetries: 1}
	res, err := RunLadder(cfg, func(c Config) (Source, error) {
		return WrapSource(NewFunctionalSource(c, w.MustBuild()), func(p queue.Producer) queue.Producer {
			return faultinject.PanicAt(p, 50, "persistent fault")
		}), nil
	})
	if res != nil {
		t.Error("exhausted ladder returned a result")
	}
	if !errors.Is(err, simerr.ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic class", err)
	}
}

// TestLadderStallDegrades: a stall on the requested rung (frozen
// producer + watchdog) degrades to the next rung when the fault
// injector targets only the first attempt. The watchdog runs on the
// wall clock with a short budget: the freeze is permanent, so the
// outcome (fire, interrupt, degrade) is deterministic even though the
// firing instant is not.
func TestLadderStallDegrades(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	cfg := Default(wrongpath.Conv)
	cfg.Degrade = DegradePolicy{MaxRetries: 1}
	cfg.Watchdog = 100 * time.Millisecond
	attempts := 0
	res, err := RunLadder(cfg, func(c Config) (Source, error) {
		attempts++
		src := NewFunctionalSource(c, w.MustBuild())
		if attempts > 1 {
			return src, nil
		}
		return WrapSource(src, func(p queue.Producer) queue.Producer {
			return faultinject.FreezeAt(p, 200)
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.WP != wrongpath.InstRec {
		t.Fatalf("stall did not degrade: degraded=%v WP=%v err=%v", res.Degraded, res.WP, res.Err)
	}
	if !errors.Is(res.DegradeFault, simerr.ErrStall) {
		t.Errorf("DegradeFault = %v, want ErrStall cause", res.DegradeFault)
	}
}

// TestRunKindsLadderCleanBitIdentical: with the ladder armed but no
// fault injected, every cell must be bit-identical to the unarmed run —
// the acceptance criterion's fault-free half at the sim layer.
func TestRunKindsLadderCleanBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	kinds := wrongpath.Kinds()
	plain, err := RunKinds(Default(wrongpath.NoWP), w, kinds, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(wrongpath.NoWP)
	cfg.Degrade = DegradePolicy{MaxRetries: 2}
	laddered, err := RunKinds(cfg, w, kinds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range kinds {
		p, l := plain[i], laddered[i]
		if l.Degraded || l.Err != nil {
			t.Fatalf("%v: fault-free cell marked degraded (%v) or faulted (%v)", k, l.Degraded, l.Err)
		}
		if p.Core != l.Core || p.Policy != l.Policy {
			t.Errorf("%v: ladder-armed clean run differs from plain run", k)
		}
		if p.L1I != l.L1I || p.L1D != l.L1D || p.L2 != l.L2 || p.LLC != l.LLC {
			t.Errorf("%v: cache stats differ with ladder armed", k)
		}
	}
}
