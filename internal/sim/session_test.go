package sim

import (
	"strings"
	"testing"

	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// TestSessionCapabilityRejection: the session layer must reject wpemul
// on any source that cannot functionally emulate wrong paths (the
// paper's §III-B restriction), and must do so before touching the
// producer — a trace source with no stream behind it is enough to get
// the error.
func TestSessionCapabilityRejection(t *testing.T) {
	_, err := NewSession(Default(wrongpath.WPEmul), NewTraceSource(nil))
	if err == nil {
		t.Fatal("session accepted wpemul on a trace source")
	}
	if !strings.Contains(err.Error(), "III-B") {
		t.Errorf("rejection should cite the paper's restriction, got: %v", err)
	}

	// Every reconstruction technique must pass the capability check
	// (construction only — a nil producer cannot run).
	for _, k := range wrongpath.Kinds() {
		if k == wrongpath.WPEmul {
			continue
		}
		if _, err := NewSession(Default(k), NewTraceSource(nil)); err != nil {
			t.Errorf("%v rejected on a trace source: %v", k, err)
		}
	}
}

// TestSessionMatchesRun: constructing the source and session by hand
// must be bit-identical to the Run wrapper — Run is documented as a
// thin wrapper, and callers supplying custom sources rely on it.
func TestSessionMatchesRun(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
		cfg := Default(k)

		wrapped, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}

		src := NewFunctionalSource(cfg, w.MustBuild())
		s, err := NewSession(cfg, src)
		if err != nil {
			src.Close()
			t.Fatal(err)
		}
		manual := s.Run()

		if wrapped.Core != manual.Core {
			t.Errorf("%v: core stats diverge:\n wrapped %+v\n manual  %+v", k, wrapped.Core, manual.Core)
		}
		if wrapped.L1D != manual.L1D || wrapped.L2 != manual.L2 {
			t.Errorf("%v: cache stats diverge", k)
		}
		if wrapped.FunctionalInsts != manual.FunctionalInsts ||
			wrapped.WPEmulatedPaths != manual.WPEmulatedPaths {
			t.Errorf("%v: source-side stats diverge", k)
		}
	}
}

// TestRunKindsParallelMatchesSerial: the batch engine's core guarantee
// at the sim layer — RunKinds with N workers must produce results
// bit-identical to the serial run, in kinds order, for every field but
// the host wall clock. CI runs this under -race.
func TestRunKindsParallelMatchesSerial(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	kinds := wrongpath.Kinds()
	cfg := Default(wrongpath.NoWP)

	serial, err := RunKinds(cfg, w, kinds, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunKinds(cfg, w, kinds, 4)
	if err != nil {
		t.Fatal(err)
	}

	for i, k := range kinds {
		s, p := serial[i], parallel[i]
		if s.WP != k || p.WP != k {
			t.Fatalf("result %d: out of kinds order (serial %v, parallel %v, want %v)", i, s.WP, p.WP, k)
		}
		if s.Core != p.Core {
			t.Errorf("%v: core stats diverge across worker counts:\n serial   %+v\n parallel %+v", k, s.Core, p.Core)
		}
		if s.L1I != p.L1I || s.L1D != p.L1D || s.L2 != p.L2 || s.LLC != p.LLC {
			t.Errorf("%v: cache stats diverge across worker counts", k)
		}
		if s.Policy != p.Policy {
			t.Errorf("%v: policy stats diverge across worker counts", k)
		}
		if s.MemAccesses != p.MemAccesses || s.WrongMemAccesses != p.WrongMemAccesses {
			t.Errorf("%v: memory stats diverge across worker counts", k)
		}
		if s.FunctionalInsts != p.FunctionalInsts ||
			s.WPEmulatedPaths != p.WPEmulatedPaths || s.WPEmulatedInsts != p.WPEmulatedInsts {
			t.Errorf("%v: functional-side stats diverge across worker counts", k)
		}
	}
}

// TestRunAllCoversEveryKind: RunAll's map must contain exactly the
// canonical kinds.
func TestRunAllCoversEveryKind(t *testing.T) {
	results, err := RunAll(Default(wrongpath.NoWP), gap.BFS(gap.TestParams()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(wrongpath.Kinds()) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(wrongpath.Kinds()))
	}
	for _, k := range wrongpath.Kinds() {
		if results[k] == nil {
			t.Errorf("RunAll missing %v", k)
		}
	}
}
