package sim

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/wrongpath"
)

// Source is the unified producer abstraction over the three frontend
// kinds the paper lists (§III-B): the live functional frontend, the
// parallel (decoupled-goroutine) functional frontend, and the trace
// interpreter. A Source feeds the decoupling queue and declares its
// capabilities, so the session layer can validate a Config against any
// frontend with one check instead of a special-cased entry point per
// combination.
type Source interface {
	queue.Producer

	// SupportsWPEmul reports whether the source can functionally
	// emulate wrong paths. Live functional frontends can; a trace
	// interpreter cannot, because "the trace only contains correct-path
	// instructions" (§III-B).
	SupportsWPEmul() bool

	// Close stops any background production (the parallel frontend's
	// producer goroutine). The session calls it after the timing run,
	// before Collect; it must be safe to call on a source that never
	// started.
	Close()

	// Collect fills the source-side Result fields (functional
	// instruction count, emulation counters, program output, functional
	// error) after the run. Core-side fields are already populated when
	// Collect is called.
	Collect(res *Result)
}

// functionalSource drives a live functional CPU, optionally decoupled
// into its own goroutine (Config.ParallelFrontend) and optionally
// emulating wrong paths (Config.WP == wrongpath.WPEmul).
type functionalSource struct {
	cpu      *functional.CPU
	fe       *frontend.Frontend
	par      *frontend.Parallel
	producer queue.Producer
}

// NewFunctionalSource builds the live functional frontend for the
// instance under cfg: wrong-path emulation when cfg.WP selects it, the
// instruction bound derived from cfg's budget, and the parallel
// producer goroutine when cfg.ParallelFrontend is set. Close must be
// called (sessions do) or the parallel goroutine leaks.
func NewFunctionalSource(cfg Config, inst *workloads.Instance) Source {
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	opts := []frontend.Option{}
	if cfg.WP == wrongpath.WPEmul {
		opts = append(opts, frontend.WithWrongPathEmulation(cfg.Core.BranchPred, cfg.Core.WPMaxLen()))
	}
	if cfg.MaxInsts > 0 {
		// Bound the functional side explicitly so a parallel frontend
		// does not run past the budget the core will simulate.
		opts = append(opts, frontend.WithMaxInstructions(cfg.WarmupInsts+cfg.MaxInsts+uint64(cfg.lookahead())+1))
	}
	fe := frontend.New(cpu, opts...)
	s := &functionalSource{cpu: cpu, fe: fe, producer: fe}
	if cfg.ParallelFrontend {
		// The run context backstops the producer goroutine: if the
		// consumer stops without Close (cancellation unwinding a sweep
		// cell), the goroutine exits instead of leaking on a full channel.
		s.par = frontend.NewParallelContext(cfg.Ctx, fe, frontend.DefaultBatch, frontend.DefaultDepth)
		s.producer = s.par
	}
	return s
}

func (s *functionalSource) Next() (trace.DynInst, bool) { return s.producer.Next() }

// NextBatch implements queue.BatchProducer by forwarding to the active
// producer (the frontend directly, or its parallel wrapper).
func (s *functionalSource) NextBatch(dst []trace.DynInst) int {
	return queue.NextBatchOf(s.producer, dst)
}

// Program exposes the static program for code-cache predecoding.
func (s *functionalSource) Program() *isa.Program { return s.cpu.Prog }

func (s *functionalSource) SupportsWPEmul() bool { return true }

func (s *functionalSource) Close() {
	if s.par != nil {
		// Stop the producer goroutine before reading functional-side
		// state (Output, Produced) to avoid racing with it.
		s.par.Close()
	}
}

// Interrupt implements Interrupter: the stall watchdog's abort path.
// The parallel frontend unblocks both channel sides; a synchronous
// producer is forwarded the interrupt if it supports one.
func (s *functionalSource) Interrupt() {
	if s.par != nil {
		s.par.Interrupt()
		return
	}
	interrupt(s.producer)
}

// SaveState serializes the complete production-side state — frontend
// cursor, emulation predictor copy, functional CPU and memory — by
// delegating to the frontend. Only the synchronous mode checkpoints
// (the session layer rejects the parallel frontend), so no goroutine
// state exists to capture.
func (s *functionalSource) SaveState(w *checkpoint.Writer) {
	s.fe.SaveState(w)
}

// RestoreState overwrites the production-side state with the snapshot.
func (s *functionalSource) RestoreState(r *checkpoint.Reader) error {
	return s.fe.RestoreState(r)
}

func (s *functionalSource) Collect(res *Result) {
	paths, insts := s.fe.WPEmulations()
	res.FunctionalInsts = s.fe.Produced()
	res.WPEmulatedPaths = paths
	res.WPEmulatedInsts = insts
	res.Output = s.cpu.Output
	res.Err = s.fe.Err()
	if s.par != nil {
		if perr := s.par.Err(); perr != nil {
			// A recovered producer panic outranks any functional error:
			// the functional state is whatever the panic left behind.
			res.Err = perr
		}
	}
}

// traceSource adapts a pre-recorded instruction stream (typically a
// *tracefile.Reader) to the Source interface. It cannot emulate wrong
// paths, so the session layer rejects wrongpath.WPEmul for it — the
// capability check that replaces RunTrace's special-cased rejection.
type traceSource struct {
	src queue.Producer
}

// NewTraceSource wraps a trace producer as a Source.
func NewTraceSource(src queue.Producer) Source { return traceSource{src: src} }

func (s traceSource) Next() (trace.DynInst, bool) { return s.src.Next() }

// NextBatch forwards batched refills to the trace producer (batched
// when the reader supports it, per-record otherwise).
func (s traceSource) NextBatch(dst []trace.DynInst) int {
	return queue.NextBatchOf(s.src, dst)
}

func (s traceSource) SupportsWPEmul() bool { return false }

func (s traceSource) Close() {}

// Interrupt forwards the watchdog's abort to the trace producer when it
// supports one (faultinject wrappers do; a plain tracefile.Reader never
// blocks, so it has no interrupt to forward).
func (s traceSource) Interrupt() { interrupt(s.src) }

// SaveState serializes the trace cursor: the number of records decoded
// so far. The trace bytes themselves are the durable artifact; resume
// re-opens the file and skips forward.
func (s traceSource) SaveState(w *checkpoint.Writer) {
	w.Section("sim/traceSource", sessionSnapshotVersion)
	// checkpointState gates on this capability before any snapshot is
	// attempted, so the assertion cannot fail here.
	pos := s.src.(interface{ Pos() uint64 })
	w.Uint64(pos.Pos())
}

// RestoreState replays the cursor: the wrapped reader must be fresh
// (positioned at record 0) and support Skip — tracefile.Reader does.
func (s traceSource) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("sim/traceSource", sessionSnapshotVersion); err != nil {
		return err
	}
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	sk, ok := s.src.(interface{ Skip(uint64) error })
	if !ok {
		return fmt.Errorf("sim: trace producer %T cannot skip to the snapshot cursor", s.src)
	}
	return sk.Skip(n)
}

func (s traceSource) Collect(res *Result) {
	// A trace replays exactly the instructions the core consumes; the
	// recorded stream has no program output. A reader that exposes a
	// stream error (tracefile.Reader's typed ErrTraceCorrupt) reports it
	// here, so a corrupt tail surfaces instead of truncating silently.
	res.FunctionalInsts = res.Core.Instructions
	if e, ok := s.src.(interface{ Err() error }); ok {
		res.Err = e.Err()
	}
}

// WrapSource replaces the instruction stream of src with wrap(src),
// keeping src's capabilities and lifecycle — the injection point for
// fault wrappers (internal/faultinject) and stream filters. Interrupts
// reach both the wrapper (when it is an Interrupter, e.g. a Freezer)
// and the underlying source.
func WrapSource(src Source, wrap func(queue.Producer) queue.Producer) Source {
	return &wrappedSource{Source: src, producer: wrap(src)}
}

type wrappedSource struct {
	Source
	producer queue.Producer
}

func (w *wrappedSource) Next() (trace.DynInst, bool) { return w.producer.Next() }

// NextBatch must be defined explicitly: the embedded Source would
// otherwise promote its own NextBatch and hand out batches that bypass
// the wrapper chain (fault injectors, filters). Batches route through
// w.producer, falling back to its per-record Next when the wrapper does
// not batch — which keeps every wrapped record passing through wrap().
func (w *wrappedSource) NextBatch(dst []trace.DynInst) int {
	return queue.NextBatchOf(w.producer, dst)
}

func (w *wrappedSource) Interrupt() {
	interrupt(w.producer)
	interrupt(w.Source)
}
