package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// stripHost removes the host-dependent fields from a Result so the
// remainder can be compared bit-for-bit.
func stripHost(r *Result) Result {
	n := *r
	n.Wall = 0
	return n
}

// TestBatchSizeBitIdentical: the decoupling-queue lane size is a host
// throughput knob only. Every simulated field of Result — core and
// policy statistics, all cache levels, functional instruction count,
// even the program's captured output — must be identical at any batch
// size, for every technique. Batch=1 drives the consolidated run loop
// down the per-instruction pull pattern, so it doubles as the legacy
// reference.
func TestBatchSizeBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range wrongpath.Kinds() {
		refCfg := Default(k)
		refCfg.Core.Batch = 1
		ref, err := Run(refCfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if ref.Err != nil {
			t.Fatalf("%v: reference run fault: %v", k, ref.Err)
		}
		for _, batch := range []int{0, 3, 64, 256} {
			cfg := Default(k)
			cfg.Core.Batch = batch
			got, err := Run(cfg, w.MustBuild())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripHost(got), stripHost(ref)) {
				t.Errorf("%v: batch=%d diverges from per-instruction:\n got  %+v\n want %+v",
					k, batch, stripHost(got), stripHost(ref))
			}
		}
	}
}

// TestBatchWithParallelFrontendBitIdentical: lane batching composes
// with the parallel frontend (batched channel hand-off on the producer
// side) without changing a single statistic.
func TestBatchWithParallelFrontendBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
		refCfg := Default(k)
		refCfg.Core.Batch = 1
		ref, err := Run(refCfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default(k)
		cfg.ParallelFrontend = true
		got, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripHost(got), stripHost(ref)) {
			t.Errorf("%v: batched parallel frontend diverges from serial per-instruction run", k)
		}
	}
}

// TestBatchWithWatchdogBitIdentical: arming the watchdog interposes the
// per-record progress tap (the producer side deliberately drops batched
// refills so stall snapshots stay exact); consumer-side lanes must
// still yield identical results, idle watchdog or not, at any size.
func TestBatchWithWatchdogBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
		refCfg := Default(k)
		refCfg.Core.Batch = 1
		ref, err := Run(refCfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default(k)
		cfg.Watchdog = time.Minute
		got, err := Run(cfg, w.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if got.Err != nil {
			t.Fatalf("%v: idle watchdog fired: %v", k, got.Err)
		}
		if !reflect.DeepEqual(stripHost(got), stripHost(ref)) {
			t.Errorf("%v: batched run under an idle watchdog diverges from per-instruction", k)
		}
	}
}

// TestRunKindsBatchBitIdentical covers the sweep entry point the
// experiments layer uses: every technique's result from one batched
// sweep equals its per-instruction counterpart.
func TestRunKindsBatchBitIdentical(t *testing.T) {
	w := gap.BFS(gap.TestParams())
	refCfg := Default(wrongpath.NoWP)
	refCfg.Core.Batch = 1
	refs, err := RunAll(refCfg, w)
	if err != nil {
		t.Fatal(err)
	}
	gots, err := RunAll(Default(wrongpath.NoWP), w)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range wrongpath.Kinds() {
		if !reflect.DeepEqual(stripHost(gots[k]), stripHost(refs[k])) {
			t.Errorf("%v: batched RunAll result diverges from per-instruction", k)
		}
	}
}
