package sim

import (
	"errors"
	"runtime/debug"

	"repro/internal/checkpoint"
	"repro/internal/simerr"
	"repro/internal/wrongpath"
)

// DegradePolicy configures the graceful-degradation ladder: on a
// recoverable fault, a job is re-run one technique rung down
// (wpemul→conv→instrec→nowp, see wrongpath.Downgrade) instead of
// failing the whole sweep. The zero value disables the ladder.
type DegradePolicy struct {
	// MaxRetries bounds the ladder descents per job; each retry costs
	// one full re-simulation. 0 disables degradation entirely.
	MaxRetries int
}

// Enabled reports whether the ladder is armed.
func (p DegradePolicy) Enabled() bool { return p.MaxRetries > 0 }

// Recoverable reports whether a fault class is survivable one rung down
// the ladder: a capability the lower technique does not need
// (ErrUnsupported), a wedged run-ahead the lower technique does not
// exercise (ErrStall), or a contained crash worth one more attempt
// (ErrWorkerPanic). Trace corruption is NOT recoverable by re-running —
// the same bytes fail again — and is handled by keeping the valid
// prefix instead (see RunLadder).
func Recoverable(err error) bool {
	return errors.Is(err, simerr.ErrUnsupported) ||
		errors.Is(err, simerr.ErrStall) ||
		errors.Is(err, simerr.ErrWorkerPanic)
}

// runFault extracts the typed fault of an attempt: a returned error, or
// a classified simerr fault the run recorded in Result.Err. A plain
// functional-simulation error in Result.Err is not a fault — it is the
// pre-existing "program ended abnormally" channel and passes through
// untouched.
func runFault(res *Result, err error) error {
	if err != nil {
		return err
	}
	if res != nil && res.Err != nil {
		var f *simerr.Fault
		if errors.As(res.Err, &f) {
			return res.Err
		}
	}
	return nil
}

// closeQuiet closes a source, containing a panic from a close path that
// the original fault already broke.
func closeQuiet(src Source) {
	defer func() { _ = recover() }()
	src.Close()
}

// attempt runs one rung: build the source, wire the session, run. A
// panic anywhere in the attempt — a synchronous producer fault, a
// policy bug — is recovered into a typed ErrWorkerPanic so the ladder
// can decide, and the source is torn down.
//
// With checkpointing enabled, the rung resumes from the latest snapshot
// in cfg.CheckpointDir instead of from zero: the previous rung's crash
// already paid for the instructions up to that snapshot. A snapshot the
// new rung cannot restore (a wpemul snapshot carries the emulation
// predictor a lower-rung frontend does not have, or the file is
// corrupt) falls back to a from-scratch run — degradation never fails
// on its own recovery data.
func attempt(cfg Config, mk func(Config) (Source, error)) (res *Result, err error) {
	var src Source
	defer func() {
		if rec := recover(); rec != nil {
			if src != nil {
				closeQuiet(src)
			}
			res, err = nil, simerr.WorkerPanic("simulation run", rec, debug.Stack())
		}
	}()
	build := func() (*Session, error) {
		var berr error
		src, berr = mk(cfg)
		if berr != nil {
			return nil, berr
		}
		s, berr := NewSession(cfg, src)
		if berr != nil {
			closeQuiet(src)
			src = nil
			return nil, berr
		}
		return s, nil
	}
	s, err := build()
	if err != nil {
		return nil, err
	}
	if cfg.checkpointEnabled() {
		if snap, _ := checkpoint.Latest(cfg.CheckpointDir); snap != "" {
			restored := false
			if r, rerr := checkpoint.ReadFile(snap); rerr == nil {
				restored = s.Restore(r) == nil
			}
			if !restored {
				// The snapshot does not restore into this rung's session; a
				// failed Restore leaves the session partially overwritten, so
				// rebuild everything and run from zero.
				closeQuiet(src)
				src = nil
				if s, err = build(); err != nil {
					return nil, err
				}
			}
		}
	}
	return s.Run(), nil
}

// RunLadder runs cfg's technique with graceful degradation: mk builds a
// fresh Source for every attempt (instances are consumed by a run), and
// on a recoverable fault the job is re-run one rung down the ladder, at
// most cfg.Degrade.MaxRetries times. The final Result records the
// descent: WP is the rung that ran, RequestedWP the rung asked for,
// Degraded/DegradeFault the annotation (matching simerr.ErrDegraded and
// the original fault class).
//
// Trace corruption is special-cased: the run's valid prefix is already
// a complete partial simulation, so the result is kept and annotated
// rather than re-run against the same broken bytes.
//
// Unrecoverable faults, exhausted retries, and a floor with no rung
// below all return the typed fault — the cell fails loudly, the sweep
// survives. Fault-free runs return bit-identical results to Run.
// With Config.Metrics set, the accepted result's aggregate counters are
// published exactly once — failed rungs sample live distributions under
// their own technique label but contribute nothing to run totals — and
// every descent increments sim_degrade_retries_total under the
// requested technique.
func RunLadder(cfg Config, mk func(Config) (Source, error)) (*Result, error) {
	requested := cfg.WP
	res, err := attempt(cfg, mk)
	fault := runFault(res, err)
	if fault == nil {
		cfg.publish(res)
		return res, err
	}
	for retries := 0; ; retries++ {
		if errors.Is(fault, simerr.ErrTraceCorrupt) && res != nil {
			res.RequestedWP = requested
			res.Degraded = true
			res.DegradeFault = simerr.Degraded(requested.String(), cfg.WP.String()+" (partial prefix)", fault)
			cfg.publish(res)
			return res, nil
		}
		if retries >= cfg.Degrade.MaxRetries || !Recoverable(fault) {
			return nil, fault
		}
		down, ok := wrongpath.Downgrade(cfg.WP)
		if !ok {
			return nil, fault
		}
		cfg.noteRetry(requested.String())
		cfg.WP = down
		res, err = attempt(cfg, mk)
		if next := runFault(res, err); next != nil {
			fault = next
			continue
		}
		res.RequestedWP = requested
		res.Degraded = true
		res.DegradeFault = simerr.Degraded(requested.String(), down.String(), fault)
		cfg.publish(res)
		return res, nil
	}
}
