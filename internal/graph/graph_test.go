package graph

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(7).Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestBuildCSR(t *testing.T) {
	edges := []Edge{
		{0, 1}, {0, 2}, {0, 1}, // duplicate dropped
		{1, 0},
		{2, 2}, // self loop dropped
		{2, 0}, {2, 1},
	}
	g := BuildCSR(3, edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Adj(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("adj(0) = %v", got)
	}
	if got := g.Adj(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("adj(1) = %v", got)
	}
	if got := g.Adj(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("adj(2) = %v", got)
	}
	if g.NumEdges() != 5 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Error("degrees wrong")
	}
}

func TestUniformProperties(t *testing.T) {
	g := Uniform(500, 4, 11, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 500 {
		t.Errorf("N = %d", g.N)
	}
	// Symmetry: u in adj(v) iff v in adj(u).
	for u := 0; u < g.N; u++ {
		for _, v := range g.Adj(u) {
			found := false
			for _, w := range g.Adj(int(v)) {
				if w == uint64(u) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", u, v)
			}
		}
	}
}

func TestUniformDeterminism(t *testing.T) {
	a := Uniform(200, 4, 5, true)
	b := Uniform(200, 4, 5, true)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same-seed graphs differ")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("same-seed graphs differ")
		}
	}
}

func TestKroneckerProperties(t *testing.T) {
	g := Kronecker(10, 4, 3, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Errorf("N = %d", g.N)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// RMAT graphs are skewed: the maximum degree should far exceed the
	// average.
	maxDeg, sum := 0, 0
	for u := 0; u < g.N; u++ {
		d := g.Degree(u)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N)
	if float64(maxDeg) < 4*avg {
		t.Errorf("max degree %d not skewed vs average %.1f", maxDeg, avg)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 20 {
		t.Errorf("N = %d", g.N)
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(1) != 3 {
		t.Errorf("edge degree = %d", g.Degree(1))
	}
	if g.Degree(6) != 4 { // (1,1) interior
		t.Errorf("interior degree = %d", g.Degree(6))
	}
	// Total edges: 2 * (h*(w-1) + w*(h-1)) directed.
	want := 2 * (4*4 + 5*3)
	if g.NumEdges() != want {
		t.Errorf("edges = %d, want %d", g.NumEdges(), want)
	}
}

func TestWeights(t *testing.T) {
	g := Uniform(100, 4, 9, false)
	w := Weights(g, 1, 32)
	if len(w) != g.NumEdges() {
		t.Fatalf("weights length %d, edges %d", len(w), g.NumEdges())
	}
	for _, v := range w {
		if v < 1 || v > 32 {
			t.Fatalf("weight %d out of [1,32]", v)
		}
	}
	w2 := Weights(g, 1, 32)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("weights nondeterministic")
		}
	}
}

// TestQuickCSRInvariants: for arbitrary edge lists, BuildCSR yields a
// structurally valid graph with no self loops and no duplicates.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint32(raw[i]) % n, uint32(raw[i+1]) % n})
		}
		g := BuildCSR(n, edges)
		if g.Validate() != nil {
			return false
		}
		for u := 0; u < n; u++ {
			adj := g.Adj(u)
			for i, v := range adj {
				if v == uint64(u) {
					return false // self loop survived
				}
				if i > 0 && adj[i-1] == v {
					return false // duplicate survived
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
