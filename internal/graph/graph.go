// Package graph provides deterministic graph generation and the CSR
// (compressed sparse row) representation the GAP benchmark kernels
// operate on, mirroring the GAP benchmark suite's input pipeline
// (uniform-random and Kronecker/RMAT generators, symmetrization, sorted
// adjacency lists).
package graph

import (
	"fmt"
	"sort"
)

// RNG is a splitmix64 pseudo-random generator: tiny, fast and
// deterministic across platforms (no dependence on math/rand ordering).
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n uint64) uint64 {
	if n == 0 {
		panic("graph: Intn(0)")
	}
	return r.Next() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Edge is a directed edge.
type Edge struct{ Src, Dst uint32 }

// CSR is a graph in compressed sparse row form. Offsets has N+1
// entries; the neighbors of u are Neighbors[Offsets[u]:Offsets[u+1]],
// sorted ascending.
type CSR struct {
	N         int
	Offsets   []uint64
	Neighbors []uint64
}

// Degree returns the out-degree of u.
func (g *CSR) Degree(u int) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Adj returns the (sorted) adjacency list of u.
func (g *CSR) Adj(u int) []uint64 {
	return g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int { return len(g.Neighbors) }

// Validate checks structural invariants (monotone offsets, in-range
// sorted neighbors); used by tests and property checks.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != uint64(len(g.Neighbors)) {
		return fmt.Errorf("graph: offset endpoints invalid")
	}
	for u := 0; u < g.N; u++ {
		if g.Offsets[u] > g.Offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
		adj := g.Adj(u)
		for i, v := range adj {
			if v >= uint64(g.N) {
				return fmt.Errorf("graph: neighbor %d of %d out of range", v, u)
			}
			if i > 0 && adj[i-1] > v {
				return fmt.Errorf("graph: adjacency of %d not sorted", u)
			}
		}
	}
	return nil
}

// BuildCSR constructs a CSR from an edge list, sorting and deduplicating
// adjacency lists and dropping self-loops.
func BuildCSR(n int, edges []Edge) *CSR {
	deg := make([]uint64, n+1)
	for _, e := range edges {
		if e.Src != e.Dst {
			deg[e.Src+1]++
		}
	}
	off := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i+1]
	}
	nbr := make([]uint64, off[n])
	fill := make([]uint64, n)
	copy(fill, off[:n])
	for _, e := range edges {
		if e.Src != e.Dst {
			nbr[fill[e.Src]] = uint64(e.Dst)
			fill[e.Src]++
		}
	}
	for u := 0; u < n; u++ {
		adj := nbr[off[u]:off[u+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return dedup(n, nbr, off)
}

// dedup compacts sorted adjacency lists, dropping duplicate edges.
func dedup(n int, nbr []uint64, off []uint64) *CSR {
	outOff := make([]uint64, n+1)
	var outNbr []uint64
	for u := 0; u < n; u++ {
		adj := nbr[off[u]:off[u+1]]
		outOff[u] = uint64(len(outNbr))
		for i, v := range adj {
			if i > 0 && adj[i-1] == v {
				continue
			}
			outNbr = append(outNbr, v)
		}
	}
	outOff[n] = uint64(len(outNbr))
	return &CSR{N: n, Offsets: outOff, Neighbors: outNbr}
}

// Uniform generates a directed uniform-random graph with n vertices and
// approximately n*degree edges, symmetrized when undirected is set.
func Uniform(n, degree int, seed uint64, undirected bool) *CSR {
	rng := NewRNG(seed)
	edges := make([]Edge, 0, n*degree*2)
	for u := 0; u < n; u++ {
		for d := 0; d < degree; d++ {
			v := uint32(rng.Intn(uint64(n)))
			edges = append(edges, Edge{uint32(u), v})
			if undirected {
				edges = append(edges, Edge{v, uint32(u)})
			}
		}
	}
	return BuildCSR(n, edges)
}

// Kronecker generates an RMAT/Kronecker graph with 2^scale vertices and
// approximately edgeFactor*2^scale edges using the GAP/Graph500
// parameters (A=0.57, B=0.19, C=0.19), symmetrized when undirected.
// Kronecker graphs have the skewed degree distribution that makes graph
// workloads branchy and cache-hostile.
func Kronecker(scale, edgeFactor int, seed uint64, undirected bool) *CSR {
	n := 1 << uint(scale)
	rng := NewRNG(seed)
	m := n * edgeFactor
	edges := make([]Edge, 0, m*2)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var src, dst int
		for bit := 0; bit < scale; bit++ {
			p := rng.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				dst |= 1 << uint(bit)
			case p < a+b+c:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		edges = append(edges, Edge{uint32(src), uint32(dst)})
		if undirected {
			edges = append(edges, Edge{uint32(dst), uint32(src)})
		}
	}
	return BuildCSR(n, edges)
}

// Grid2D generates a w×h four-connected grid graph (road-network-like:
// bounded degree, large diameter). BFS/SSSP on grids have long
// frontiers and highly regular inner loops — the opposite end of the
// behaviour spectrum from Kronecker graphs.
func Grid2D(w, h int) *CSR {
	n := w * h
	edges := make([]Edge, 0, 4*n)
	idx := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, Edge{idx(x, y), idx(x+1, y)}, Edge{idx(x+1, y), idx(x, y)})
			}
			if y+1 < h {
				edges = append(edges, Edge{idx(x, y), idx(x, y+1)}, Edge{idx(x, y+1), idx(x, y)})
			}
		}
	}
	return BuildCSR(n, edges)
}

// Weights generates deterministic positive edge weights in [1, maxW]
// aligned with the CSR's Neighbors array (for SSSP).
func Weights(g *CSR, seed uint64, maxW int) []uint64 {
	rng := NewRNG(seed)
	w := make([]uint64, len(g.Neighbors))
	for i := range w {
		w[i] = 1 + rng.Intn(uint64(maxW))
	}
	return w
}
