// Package cliobs is the shared observability surface of the CLIs
// (wpsim, wpexp, wptrace): the -pprof, -metrics-out and -trace-out
// flags, and the start/finish lifecycle around a run. It exists so the
// three commands expose identical flags with identical semantics and
// the README documents them once.
package cliobs

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Flags bundles the observability flag values and the live outputs
// they enable.
type Flags struct {
	PProf      string
	MetricsOut string
	TraceOut   string

	registry *obs.Registry
	sink     *obs.TraceSink
	traceF   *os.File
	stopProf func() error
}

// Register installs the three flags on fs (the CLIs pass
// flag.CommandLine).
func (o *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.PProf, "pprof", "", "write a CPU profile of the process to this file (view with go tool pprof)")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the run's observability metrics (JSON, see internal/obs) to this file")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a cycle-event trace (Chrome-trace/Perfetto JSON; open in chrome://tracing or ui.perfetto.dev) to this file")
}

// Start begins profiling and opens the metric/trace outputs according
// to the parsed flag values. The returned registry and sink are nil
// for outputs that were not requested — precisely the nil-disables
// contract of sim.Config.Metrics/Trace.
func (o *Flags) Start() (*obs.Registry, *obs.TraceSink, error) {
	if o.PProf != "" {
		stop, err := obs.StartCPUProfile(o.PProf)
		if err != nil {
			return nil, nil, err
		}
		o.stopProf = stop
	}
	if o.MetricsOut != "" {
		o.registry = obs.NewRegistry()
	}
	if o.TraceOut != "" {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			return nil, nil, fmt.Errorf("creating trace output: %w", err)
		}
		o.traceF = f
		o.sink = obs.NewTraceSink(f)
	}
	return o.registry, o.sink, nil
}

// Finish stops the profile and flushes the metric and trace files. It
// is safe to call when Start enabled nothing (or was never called).
func (o *Flags) Finish() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.stopProf != nil {
		keep(o.stopProf())
		o.stopProf = nil
	}
	if o.registry != nil {
		f, err := os.Create(o.MetricsOut)
		keep(err)
		if err == nil {
			keep(o.registry.WriteJSON(f))
			keep(f.Close())
		}
	}
	if o.sink != nil {
		keep(o.sink.Close())
		keep(o.traceF.Close())
		o.sink, o.traceF = nil, nil
	}
	return first
}
