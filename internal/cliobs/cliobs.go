// Package cliobs is the shared observability surface of the CLIs
// (wpsim, wpexp, wptrace, wpserved): the -pprof, -metrics-out and
// -trace-out flags, and the start/finish lifecycle around a run. It
// exists so the commands expose identical flags with identical
// semantics and the README documents them once.
//
// The lifecycle contract the commands rely on:
//
//   - Start either enables everything the flags requested or nothing:
//     on error it unwinds whatever it had already opened (stops the CPU
//     profiler, closes and removes a partially-created trace file), so
//     a failed Start never leaks a running profiler or an open file.
//   - Finish is idempotent and safe under concurrent calls; the second
//     and later calls are no-ops. Commands defer it so the requested
//     output files are flushed before every exit path — including
//     degraded (exit-code-3) and hard-failure exits.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// Flags bundles the observability flag values and the live outputs
// they enable.
type Flags struct {
	PProf      string
	MetricsOut string
	TraceOut   string

	mu       sync.Mutex
	registry *obs.Registry
	sink     *obs.TraceSink
	traceF   *os.File
	stopProf func() error
}

// Register installs the three flags on fs (the CLIs pass
// flag.CommandLine or their command's FlagSet).
func (o *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.PProf, "pprof", "", "write a CPU profile of the process to this file (view with go tool pprof)")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the run's observability metrics (JSON, see internal/obs) to this file")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a cycle-event trace (Chrome-trace/Perfetto JSON; open in chrome://tracing or ui.perfetto.dev) to this file")
}

// Start begins profiling and opens the metric/trace outputs according
// to the parsed flag values. The returned registry and sink are nil
// for outputs that were not requested — precisely the nil-disables
// contract of sim.Config.Metrics/Trace. On error everything already
// opened is unwound: no profiler keeps running and no file stays open
// (a partially-created trace file is removed).
func (o *Flags) Start() (*obs.Registry, *obs.TraceSink, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var undo []func()
	fail := func(err error) (*obs.Registry, *obs.TraceSink, error) {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		o.registry, o.sink, o.traceF, o.stopProf = nil, nil, nil, nil
		return nil, nil, err
	}
	if o.PProf != "" {
		stop, err := obs.StartCPUProfile(o.PProf)
		if err != nil {
			return fail(err)
		}
		o.stopProf = stop
		undo = append(undo, func() { _ = stop() })
	}
	if o.MetricsOut != "" {
		o.registry = obs.NewRegistry()
	}
	if o.TraceOut != "" {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			return fail(fmt.Errorf("creating trace output: %w", err))
		}
		o.traceF = f
		o.sink = obs.NewTraceSink(f)
	}
	return o.registry, o.sink, nil
}

// Finish stops the profile and flushes the metric and trace files. It
// is idempotent — the second and later calls (from any goroutine) are
// no-ops — and safe to call when Start enabled nothing, failed, or was
// never called. Commands defer it so every exit path, clean or not,
// flushes the requested outputs first.
func (o *Flags) Finish() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.stopProf != nil {
		keep(o.stopProf())
		o.stopProf = nil
	}
	if o.registry != nil {
		f, err := os.Create(o.MetricsOut)
		keep(err)
		if err == nil {
			keep(o.registry.WriteJSON(f))
			keep(f.Close())
		}
		o.registry = nil
	}
	if o.sink != nil {
		keep(o.sink.Close())
		keep(o.traceF.Close())
		o.sink, o.traceF = nil, nil
	}
	return first
}
