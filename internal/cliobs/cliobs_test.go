package cliobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestStartNothingFinishNothing pins the trivial lifecycle: no flags,
// no outputs, no errors — including Finish without any Start at all.
func TestStartNothingFinishNothing(t *testing.T) {
	var f Flags
	reg, sink, err := f.Start()
	if err != nil || reg != nil || sink != nil {
		t.Fatalf("Start() = %v, %v, %v; want nil, nil, nil", reg, sink, err)
	}
	if err := f.Finish(); err != nil {
		t.Fatalf("Finish after empty Start: %v", err)
	}
	var never Flags
	if err := never.Finish(); err != nil {
		t.Fatalf("Finish without Start: %v", err)
	}
}

// TestMetricsAndTraceFlushed is the happy path: both outputs requested,
// both files exist and parse after Finish.
func TestMetricsAndTraceFlushed(t *testing.T) {
	dir := t.TempDir()
	f := Flags{MetricsOut: filepath.Join(dir, "m.json"), TraceOut: filepath.Join(dir, "t.json")}
	reg, sink, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil || sink == nil {
		t.Fatal("Start returned nil outputs for requested flags")
	}
	reg.Counter("x_total").Inc()
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	var metrics []obs.Metric
	data, err := os.ReadFile(f.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatalf("metrics file does not parse: %v", err)
	}
	if len(metrics) != 1 || metrics[0].Name != "x_total" {
		t.Fatalf("metrics = %+v", metrics)
	}
	var spans any
	data, err = os.ReadFile(f.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}
}

// TestFinishIdempotent: the second Finish is a no-op — it must not
// recreate output files the first Finish already flushed.
func TestFinishIdempotent(t *testing.T) {
	dir := t.TempDir()
	f := Flags{MetricsOut: filepath.Join(dir, "m.json"), TraceOut: filepath.Join(dir, "t.json")}
	if _, _, err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	// Remove both outputs; an idempotent Finish must not bring them back.
	if err := os.Remove(f.MetricsOut); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(f.TraceOut); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(); err != nil {
		t.Fatalf("second Finish: %v", err)
	}
	if _, err := os.Stat(f.MetricsOut); !os.IsNotExist(err) {
		t.Fatal("second Finish recreated the metrics file")
	}
	if _, err := os.Stat(f.TraceOut); !os.IsNotExist(err) {
		t.Fatal("second Finish recreated the trace file")
	}
}

// TestFinishConcurrent runs Finish from several goroutines under the
// race detector: exactly one flush, no double-close.
func TestFinishConcurrent(t *testing.T) {
	dir := t.TempDir()
	f := Flags{MetricsOut: filepath.Join(dir, "m.json"), TraceOut: filepath.Join(dir, "t.json")}
	if _, _, err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Finish(); err != nil {
				t.Errorf("concurrent Finish: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestStartUnwindsProfilerOnTraceError is the regression for the
// leaked-profiler bug: when -trace-out fails after -pprof started, the
// failed Start must stop the profiler it launched. Proof: starting a
// second CPU profile afterwards succeeds (the runtime rejects a second
// concurrent profile), and a later Finish is a clean no-op.
func TestStartUnwindsProfilerOnTraceError(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		PProf:    filepath.Join(dir, "cpu.pprof"),
		TraceOut: filepath.Join(dir, "no-such-dir", "t.json"),
	}
	if _, _, err := f.Start(); err == nil {
		t.Fatal("Start succeeded with an uncreatable trace path")
	}
	stop, err := obs.StartCPUProfile(filepath.Join(dir, "cpu2.pprof"))
	if err != nil {
		t.Fatalf("profiler still running after failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(); err != nil {
		t.Fatalf("Finish after failed Start: %v", err)
	}
}

// TestStartPProfError: an uncreatable profile path fails Start before
// anything else is enabled, and Finish stays a clean no-op.
func TestStartPProfError(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		PProf:      filepath.Join(dir, "no-such-dir", "cpu.pprof"),
		MetricsOut: filepath.Join(dir, "m.json"),
	}
	if _, _, err := f.Start(); err == nil {
		t.Fatal("Start succeeded with an uncreatable pprof path")
	}
	if err := f.Finish(); err != nil {
		t.Fatalf("Finish after failed Start: %v", err)
	}
	if _, err := os.Stat(f.MetricsOut); !os.IsNotExist(err) {
		t.Fatal("failed Start still produced a metrics file")
	}
}

// TestRestartAfterFinish: a Flags bundle can run a second full
// lifecycle (the daemon reuses one bundle across reload cycles).
func TestRestartAfterFinish(t *testing.T) {
	dir := t.TempDir()
	f := Flags{MetricsOut: filepath.Join(dir, "m.json")}
	for round := 0; round < 2; round++ {
		reg, _, err := f.Start()
		if err != nil {
			t.Fatalf("round %d Start: %v", round, err)
		}
		reg.Counter("rounds_total").Inc()
		if err := f.Finish(); err != nil {
			t.Fatalf("round %d Finish: %v", round, err)
		}
		if _, err := os.Stat(f.MetricsOut); err != nil {
			t.Fatalf("round %d left no metrics file: %v", round, err)
		}
	}
}
