// Package repro_test benchmarks the simulator and provides one
// testing.B entry point per paper table/figure (the full-scale numbers
// are produced by cmd/wpexp; these benches regenerate the same reports
// at reduced scale so `go test -bench` exercises every experiment
// path), plus microbenchmarks of the simulator components.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

// benchParams are reduced-scale inputs so one benchmark iteration is
// O(100 ms); EXPERIMENTS.md records the full-scale runs.
func benchGAP() gap.Params {
	return gap.Params{N: 4096, Degree: 8, Seed: 42, MaxInsts: 400_000}
}

func benchSpec() specproxy.Params {
	return specproxy.Params{Scale: 0.05, Seed: 1234}
}

func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	return experiments.NewRunner(experiments.Options{
		GAP:  benchGAP(),
		Spec: benchSpec(),
		Out:  io.Discard,
	})
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1NoWPError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4GAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Fig4GAP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4SPEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Fig4SPEC(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2WPFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ConvMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Speed(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner(b).Ablations(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator throughput per technique (the §V-B speed measurement
// as a micro-scale bench: simulated instructions per second) ---

func benchSimulate(b *testing.B, w workloads.Workload, kind wrongpath.Kind) {
	b.Helper()
	var insts, cycles uint64
	for i := 0; i < b.N; i++ {
		inst := w.MustBuild()
		cfg := sim.Default(kind)
		cfg.MaxInsts = inst.SuggestedMaxInsts
		res, err := sim.Run(cfg, inst)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Core.Instructions
		cycles += res.Core.Cycles
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Msimins/s")
	b.ReportMetric(float64(insts)/float64(cycles), "IPC")
}

func BenchmarkSimulateBFS(b *testing.B) {
	for _, kind := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.InstRec, wrongpath.Conv, wrongpath.ConvResolve, wrongpath.WPEmul} {
		b.Run(kind.String(), func(b *testing.B) {
			benchSimulate(b, gap.BFS(benchGAP()), kind)
		})
	}
}

func BenchmarkSimulateSpecINT(b *testing.B) {
	suite := specproxy.IntSuite(benchSpec())
	for _, kind := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.WPEmul} {
		b.Run(kind.String(), func(b *testing.B) {
			benchSimulate(b, suite[0], kind) // hashloop
		})
	}
}

// --- component microbenchmarks ---

func BenchmarkFunctionalInterpreter(b *testing.B) {
	inst := gap.BFS(benchGAP()).MustBuild()
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if cpu.Halted() {
			b.StopTimer()
			inst = gap.BFS(benchGAP()).MustBuild()
			cpu = functional.New(inst.Prog, inst.Mem, inst.StackTop)
			b.StartTimer()
		}
		if _, err := cpu.Step(); err != nil {
			b.Fatal(err)
		}
		n++
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Mins/s")
}

func BenchmarkWrongPathEmulation(b *testing.B) {
	inst := gap.BFS(benchGAP()).MustBuild()
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	// Advance into the kernel.
	if _, err := cpu.Run(1000); err != nil {
		b.Fatal(err)
	}
	target := cpu.PC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.WrongPathEmulate(target, 576)
	}
}

func BenchmarkCacheHierarchyLoad(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	rng := graph.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(rng.Next()&0xfffff8, uint64(i), false)
	}
}

func BenchmarkBranchPredictor(b *testing.B) {
	u := branch.New(branch.DefaultConfig())
	rng := graph.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := 0x1000 + (rng.Next()&0xff)*4
		t := u.PredictCond(pc)
		u.UpdateCond(pc, t != (rng.Next()&7 == 0))
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graph.Uniform(1<<14, 8, uint64(i+1), true)
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}
